"""Planning: oracle budgets for one query, oracle draws for a batch.

Two planners live here.

**Budget planning** (Section 8 of the paper, future work): *before*
spending the oracle budget, estimate how large it must be for the SUPG
machinery to produce a non-trivial result.

The binding finite-sample constraint for recall-target queries is the
positive-draw count (see
:func:`repro.core.uniform.minimum_positive_draws`): the estimator needs
roughly ``log(delta)/log(gamma)`` positive draws before any threshold
can be certified, and useful quality needs a multiple of that.  Given
the (cheap, always available) proxy scores, the expected positive
fraction of a weighted draw is computable in closed form for a
calibrated proxy — ``q = sum_x w(x) A(x)`` — so the planner inverts it.

For precision-target queries, the binding constraint is the candidate
scan: at least one full candidate step of labels must land above the
eventual threshold, and the per-candidate confidence level
``delta / M`` must leave the normal bound non-vacuous.

**Batch query planning**: the paper's cost model charges per distinct
labeled record, so a *batch* of selections should be grouped by shared
oracle draw before anything executes.  :func:`plan_executions` maps a
batch of (selector, dataset, seed) executions to a :class:`QueryPlan`
that groups them by ``(dataset fingerprint × SampleDesign × seed)`` —
the sample store's legal-reuse key.  The plan reports how many
distinct draws the batch needs (vs how many a naive per-execution loop
would pay for), can :meth:`~QueryPlan.prewarm` a
:class:`~repro.core.pipeline.SampleStore` by drawing each distinct
design exactly once (spilling to the disk tier when the store has one
— do this *before* forking workers, so they warm up from disk instead
of racing to re-draw the same key), and yields independent
:meth:`~QueryPlan.batches` to fan across workers.
:meth:`repro.query.engine.SupgEngine.execute_many` and the experiment
runner's parallel warm-up are both built on it.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..sampling import DEFAULT_EXPONENT, DEFAULT_MIXING, proxy_sampling_weights
from ..sampling.designs import SampleDesign
from .types import ApproxQuery, TargetType
from .uniform import DEFAULT_CANDIDATE_STEP, minimum_positive_draws
from .zonemap import SkipEstimate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets import Dataset
    from .pipeline import SampleStore

__all__ = [
    "BudgetPlan",
    "plan_budget",
    "expected_positive_fraction",
    "PlannedExecution",
    "QueryPlan",
    "plan_executions",
    "resolve_n_jobs",
    "effective_workers",
    "worker_share",
    "fork_available",
    "require_fork_or_warn",
]

#: Ceiling on ``n_jobs=-1``: past this, fork + store contention costs
#: more than the extra cores return for this workload shape, and a
#: many-core host (CI runners, shared build boxes) should not fork 64
#: workers for an 8-query window.
MAX_AUTO_WORKERS = 16


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean sequential; ``-1`` means one worker per
    available core (the joblib convention), capped at
    :data:`MAX_AUTO_WORKERS`.

    Raises:
        ValueError: for zero or other negative values.
    """
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive or -1, got {n_jobs}")
    return n_jobs


def effective_workers(n_jobs: int | None, tasks: int, what: str) -> int:
    """The worker count a fan-out will actually use.

    The one code path behind every fan-out in the repo (engine batches,
    service windows, trial/cell chunks): normalize the request via
    :func:`resolve_n_jobs`, never exceed the number of independent
    tasks, and degrade to sequential (warning once per process, tagged
    with ``what``) on platforms without ``fork``.
    """
    workers = min(resolve_n_jobs(n_jobs), max(int(tasks), 1))
    if workers > 1 and not require_fork_or_warn(what):
        workers = 1
    return workers


def worker_share(n_jobs: int | None, consumers: int) -> int:
    """Split one worker budget fairly across concurrent consumers.

    With ``max_inflight_windows > 1`` the service's ``jobs`` setting is
    a *host* budget, not a per-window one: each concurrently executing
    window gets an equal integer share (at least 1, so a window can
    always run sequentially) and the host is never oversubscribed by
    windows each forking the full budget.
    """
    if consumers <= 0:
        raise ValueError(f"consumers must be positive, got {consumers}")
    return max(1, resolve_n_jobs(n_jobs) // consumers)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    Fan-out code in this repo relies on fork inheritance (selector
    factories are closures that ``spawn`` cannot pickle) and falls back
    to sequential execution where fork is unavailable.
    """
    return "fork" in multiprocessing.get_all_start_methods()


#: Process-wide latch so the no-fork degradation warns exactly once, no
#: matter how many batches or service windows fall back to sequential.
_FORK_WARNING_EMITTED = False


def require_fork_or_warn(what: str) -> bool:
    """Check :func:`fork_available`, warning once when it is not.

    Parallel fan-out in this repo degrades to sequential execution on
    platforms without ``fork`` (results are bit-identical either way).
    That degradation should be *visible but not noisy*: the first
    caller that requests workers on a no-fork platform emits one
    :class:`RuntimeWarning`; later fallbacks stay silent.

    Returns:
        ``True`` when fork is available (callers may fan out),
        ``False`` when they must run sequentially.
    """
    global _FORK_WARNING_EMITTED
    if fork_available():
        return True
    if not _FORK_WARNING_EMITTED:
        _FORK_WARNING_EMITTED = True
        warnings.warn(
            f"the 'fork' start method is unavailable on this platform; "
            f"{what} runs sequentially (results are identical, only slower)",
            RuntimeWarning,
            stacklevel=3,
        )
    return False


def expected_positive_fraction(
    proxy_scores: np.ndarray,
    exponent: float = DEFAULT_EXPONENT,
    mixing: float = DEFAULT_MIXING,
) -> float:
    """Expected fraction of weighted draws that hit a true positive.

    Treats the proxy as calibrated (``Pr[O=1|A] = A``), which is the
    same assumption under which the sqrt weights are optimal; the
    planner's callers should recalibrate first (:mod:`repro.calibrate`)
    when the proxy is known to be skewed.

    ``exponent=0`` with ``mixing=0`` gives the uniform-sampling rate,
    i.e. the dataset's (estimated) true-positive rate.
    """
    scores = np.asarray(proxy_scores, dtype=float)
    weights = proxy_sampling_weights(scores, exponent=exponent, mixing=mixing)
    return float(np.sum(weights * scores))


@dataclass(frozen=True)
class BudgetPlan:
    """A planner's answer: the budget and the reasoning behind it.

    Attributes:
        recommended_budget: smallest budget the planner considers safe.
        minimum_budget: hard floor below which the algorithm returns
            only trivial results (whole dataset / labeled positives).
        expected_positive_draws: positives the recommended budget is
            expected to label.
        positive_fraction: expected per-draw positive probability under
            the planned sampling weights.
        rationale: one-line human-readable explanation.
    """

    recommended_budget: int
    minimum_budget: int
    expected_positive_draws: float
    positive_fraction: float
    rationale: str

    def sufficient(self, budget: int) -> bool:
        """Whether a proposed budget meets the recommended level."""
        return budget >= self.recommended_budget


def plan_budget(
    query: ApproxQuery,
    proxy_scores: np.ndarray,
    exponent: float = DEFAULT_EXPONENT,
    mixing: float = DEFAULT_MIXING,
    safety_factor: float = 3.0,
    step: int = DEFAULT_CANDIDATE_STEP,
) -> BudgetPlan:
    """Estimate the oracle budget a query needs.

    Args:
        query: the RT or PT query (its ``budget`` field is ignored —
            this function exists to choose it).
        proxy_scores: full score vector (cheap to compute, per §4.1).
        exponent, mixing: the sampling-weight configuration the
            selector will use.
        safety_factor: multiple of the bare minimum to recommend;
            covers draw variance and the quality (not just validity)
            of the result.
        step: candidate step of the PT scan.

    Returns:
        A :class:`BudgetPlan`.
    """
    if safety_factor < 1.0:
        raise ValueError(f"safety_factor must be >= 1, got {safety_factor}")
    q = expected_positive_fraction(proxy_scores, exponent=exponent, mixing=mixing)

    if query.target_type is TargetType.RECALL:
        k_min = minimum_positive_draws(query.gamma, query.delta)
        if math.isinf(k_min) or q <= 0.0:
            return BudgetPlan(
                recommended_budget=int(np.asarray(proxy_scores).size),
                minimum_budget=int(np.asarray(proxy_scores).size),
                expected_positive_draws=0.0,
                positive_fraction=q,
                rationale=(
                    "gamma=1 (or a proxy with no positive mass) cannot be certified "
                    "from samples; only exhaustive labeling guarantees full recall"
                ),
            )
        minimum = math.ceil(k_min / q)
        recommended = math.ceil(safety_factor * minimum)
        rationale = (
            f"recall target {query.gamma} at delta {query.delta} needs >= {k_min:.0f} "
            f"positive draws; expected positive fraction per draw is {q:.4f}"
        )
    else:
        # PT: the scan needs at least one candidate step of labels in the
        # high-score region, and the two-stage split halves the budget.
        minimum = 2 * step
        # Enough retained labels that a perfect retained sample can
        # certify precision gamma at level delta/M: width ~ sqrt(2
        # log(M/delta)/n) must fit inside (1 - gamma).
        margin = max(1.0 - query.gamma, 1e-3)
        n_certify = math.ceil(2.0 * math.log(10.0 / query.delta) / margin**2)
        minimum = max(minimum, 2 * n_certify)
        recommended = math.ceil(safety_factor * minimum)
        rationale = (
            f"precision target {query.gamma} at delta {query.delta} needs ~{n_certify} "
            f"retained labels per certified candidate (margin {margin:.2f}), with the "
            f"two-stage split doubling the total"
        )

    expected_positives = recommended * q
    return BudgetPlan(
        recommended_budget=recommended,
        minimum_budget=minimum,
        expected_positive_draws=expected_positives,
        positive_fraction=q,
        rationale=rationale,
    )


# -- batch query planning --------------------------------------------------------


@dataclass(frozen=True)
class PlannedExecution:
    """One execution of a batch, as the planner sees it.

    Attributes:
        index: position in the submitted batch (results are returned in
            this order).
        label: human-readable description (method + table, slot label).
        fingerprint: dataset content hash, when the execution is
            plannable.
        design: the execution's cacheable
            :class:`~repro.sampling.designs.SampleDesign`, when one
            exists.
        seed: the integer seed keying the draw.
        note: why the execution is *not* plannable (oracle UDF,
            generator seed, joint query, no declared design) — empty
            for grouped executions.
        skip: zone-map cost estimate (strata touched × stratum size)
            for the execution's materialization, when its dataset is
            indexed — ``None`` for unindexed datasets and unplanned
            executions.
    """

    index: int
    label: str
    fingerprint: str | None = None
    design: SampleDesign | None = None
    seed: int | None = None
    note: str = ""
    skip: SkipEstimate | None = None

    @property
    def key(self) -> tuple | None:
        """The sample store's legal-reuse key, or ``None`` if unplanned."""
        if self.fingerprint is None or self.design is None or self.seed is None:
            return None
        return (self.fingerprint, self.design, self.seed)


class QueryPlan:
    """A batch of executions grouped by shared oracle draw.

    Construct via :func:`plan_executions` (or directly from
    :class:`PlannedExecution` records plus a ``fingerprint → dataset``
    map for the datasets behind the grouped keys).
    """

    def __init__(
        self,
        executions: Sequence[PlannedExecution],
        datasets: Mapping[str, "Dataset"],
    ) -> None:
        self.executions: tuple[PlannedExecution, ...] = tuple(executions)
        self._datasets = dict(datasets)
        self._groups: "OrderedDict[tuple, list[int]]" = OrderedDict()
        self._ungrouped: list[int] = []
        for execution in self.executions:
            key = execution.key
            if key is None:
                self._ungrouped.append(execution.index)
            else:
                self._groups.setdefault(key, []).append(execution.index)

    # -- structure -------------------------------------------------------------

    @property
    def n_executions(self) -> int:
        return len(self.executions)

    @property
    def groups(self) -> Mapping[tuple, tuple[int, ...]]:
        """Key → execution indices sharing that draw, in batch order."""
        return {key: tuple(members) for key, members in self._groups.items()}

    @property
    def ungrouped(self) -> tuple[int, ...]:
        """Executions the planner cannot key (they draw fresh)."""
        return tuple(self._ungrouped)

    @property
    def distinct_draws(self) -> int:
        """Number of distinct (dataset, design, seed) oracle draws."""
        return len(self._groups)

    @property
    def predicted_labels_drawn(self) -> int:
        """Upper bound on oracle labels the grouped draws will pay for.

        Each distinct design draws ``budget`` records; with-replacement
        duplicates are only charged once, so the realized count can
        only be lower.
        """
        return sum(key[1].budget for key in self._groups)

    @property
    def predicted_labels_saved(self) -> int:
        """Upper bound on labels saved vs a naive per-execution loop
        (each group's sharers beyond the first re-use its draw)."""
        return sum(
            (len(members) - 1) * key[1].budget
            for key, members in self._groups.items()
        )

    # -- dynamic folding -------------------------------------------------------

    def covers(self, key: tuple | None) -> bool:
        """Whether a (fingerprint, design, seed) key is one of this
        plan's groups — i.e. a late arrival with that key can be folded
        into the plan without any new oracle draw."""
        return key is not None and key in self._groups

    def fold(
        self, execution: PlannedExecution, dataset: "Dataset | None" = None
    ) -> bool:
        """Fold a late-arriving execution into this plan.

        This is what lets an *open* service window absorb a query that
        arrives after the window's groups were already pre-drawn: the
        execution joins its group (or starts a new one / the unplanned
        list) and shows up in :meth:`batches` like any original member.

        Args:
            execution: the arrival, with ``index`` already set to its
                position in the caller's execution list.
            dataset: the dataset behind the execution's key, so a new
                group stays :meth:`prewarm`-able.

        Returns:
            ``True`` when the execution joined an *existing* group —
            its oracle draw is already paid for (pre-drawn or about to
            be shared); ``False`` when it needs a draw of its own.
        """
        if any(existing.index == execution.index for existing in self.executions):
            raise ValueError(f"plan already holds an execution #{execution.index}")
        self.executions = self.executions + (execution,)
        key = execution.key
        if key is None:
            self._ungrouped.append(execution.index)
            return False
        folded = key in self._groups
        self._groups.setdefault(key, []).append(execution.index)
        if dataset is not None:
            self._datasets.setdefault(execution.fingerprint, dataset)
        return folded

    def warm_keys(self, store: "SampleStore") -> Mapping[tuple, str | None]:
        """Diff this plan against a live store: key → tier or ``None``.

        For each grouped key, reports where the store could serve it
        *right now* — ``"memory"``, ``"disk"`` (a valid-looking spill
        file exists), or ``None`` (the draw would hit the oracle).
        This is the cross-batch cost estimate: keys already warm cost
        nothing, so ``predicted_labels_drawn`` only materializes for
        the cold ones.
        """
        return OrderedDict(
            (key, store.locate(*key)) for key in self._groups
        )

    def render_store_diff(self, store: "SampleStore") -> str:
        """Human-readable warm/cold report against a live store."""
        tiers = self.warm_keys(store)
        warm = sum(1 for tier in tiers.values() if tier is not None)
        cold_labels = sum(
            key[1].budget for key, tier in tiers.items() if tier is None
        )
        lines = [
            f"store diff : {warm}/{len(tiers)} draws already warm; "
            f"<= {cold_labels} labels still to draw"
        ]
        for number, (key, tier) in enumerate(tiers.items(), start=1):
            fingerprint, design, seed = key
            dataset = self._datasets.get(fingerprint)
            dataset_label = dataset.name if dataset is not None else fingerprint[:12]
            state = f"warm ({tier})" if tier is not None else "cold"
            lines.append(
                f"draw {number:<2d}    : {self._design_label(design)} seed={seed} "
                f"dataset={dataset_label} -> {state}"
            )
        return "\n".join(lines)

    # -- execution support -----------------------------------------------------

    def prewarm(
        self, store: "SampleStore", isolate_failures: bool = False
    ) -> "Mapping[tuple, Exception]":
        """Draw every distinct (dataset, design, seed) exactly once.

        Fills ``store`` — and, when it has a disk tier, the spill
        directory — before any execution runs.  Call this *before*
        forking workers: they then serve every shared design from the
        inherited memory tier or the spilled files instead of racing
        to re-draw the same key.

        Args:
            isolate_failures: when set, a failed draw (e.g. a
                permanently unavailable oracle) no longer propagates —
                the failing group is recorded and the remaining groups
                still warm up, so callers can fail only the executions
                that actually needed the broken draw.

        Returns:
            ``key → exception`` for groups whose draw failed; empty
            when everything warmed (always empty without
            ``isolate_failures``, since the first failure raises).
        """
        failures: "OrderedDict[tuple, Exception]" = OrderedDict()
        for key in self._groups:
            fingerprint, design, seed = key
            dataset = self._datasets.get(fingerprint)
            if dataset is None:
                continue
            try:
                store.fetch(dataset, design, seed)
            except Exception as exc:
                if not isolate_failures:
                    raise
                failures[key] = exc
        return failures

    def batches(self) -> list[list[int]]:
        """Independent execution batches, in first-appearance order.

        One batch per distinct draw (its sharers run together, keeping
        any lazily-drawn sample on one worker) plus a singleton batch
        per unplanned execution.  Concatenated and sorted they cover
        every index exactly once.
        """
        batches = [list(members) for members in self._groups.values()]
        batches.extend([index] for index in self._ungrouped)
        batches.sort(key=lambda batch: batch[0])
        return batches

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def _design_label(design: SampleDesign) -> str:
        if design.kind == "uniform":
            return f"uniform(budget={design.budget})"
        return (
            f"{design.kind}(budget={design.budget}, "
            f"exponent={design.exponent}, mixing={design.mixing})"
        )

    def render(self) -> str:
        """Human-readable dedup plan (what ``repro plan <file>`` prints)."""
        lines = [
            f"query plan: {self.n_executions} executions, "
            f"{self.distinct_draws} distinct oracle draws "
            f"({len(self._ungrouped)} unplanned)",
            f"labels     : <= {self.predicted_labels_drawn} drawn, "
            f"<= {self.predicted_labels_saved} saved vs per-query draws",
        ]
        for number, (key, members) in enumerate(self._groups.items(), start=1):
            fingerprint, design, seed = key
            dataset = self._datasets.get(fingerprint)
            dataset_label = dataset.name if dataset is not None else fingerprint[:12]
            shared = ", ".join(f"#{index}" for index in members)
            lines.append(
                f"draw {number:<2d}    : {self._design_label(design)} seed={seed} "
                f"dataset={dataset_label} -> {shared}"
            )
        for index in self._ungrouped:
            execution = self.executions[index]
            note = f" ({execution.note})" if execution.note else ""
            lines.append(f"unplanned  : #{index} {execution.label}{note}")
        for execution in self.executions:
            line = f"#{execution.index:<10d}: {execution.label}"
            if execution.skip is not None:
                line += f" [{execution.skip.render()}]"
            lines.append(line)
        return "\n".join(lines)


def plan_executions(
    specs: Iterable[tuple[str, "Dataset", object, object, str]],
) -> QueryPlan:
    """Build a :class:`QueryPlan` from execution specs.

    Args:
        specs: one tuple per execution, in batch order:
            ``(label, dataset, selector, seed, note)``.  ``selector``
            may be ``None`` (or ``note`` non-empty) to mark an
            execution the caller already knows is unplannable — a
            joint query, an oracle-UDF execution, a selector the store
            must not serve.  Otherwise the selector's
            ``sample_design(dataset)`` names the cacheable draw;
            selectors declaring no design and generator seeds fall
            back to unplanned with a descriptive note.
    """
    executions: list[PlannedExecution] = []
    datasets: dict[str, "Dataset"] = {}
    for index, (label, dataset, selector, seed, note) in enumerate(specs):
        design = None
        if note:
            pass  # caller-supplied reason wins
        elif selector is None:
            note = "no selector to plan"
        elif not isinstance(seed, (int, np.integer)):
            note = "generator seed (no stable cache key)"
        else:
            design_fn = getattr(selector, "sample_design", None)
            design = design_fn(dataset) if callable(design_fn) else None
            if design is None:
                note = "selector declares no sample design"
        if design is not None:
            datasets[dataset.fingerprint] = dataset
            executions.append(
                PlannedExecution(
                    index=index,
                    label=label,
                    fingerprint=dataset.fingerprint,
                    design=design,
                    seed=int(seed),
                    skip=_skip_estimate(dataset, selector),
                )
            )
        else:
            executions.append(PlannedExecution(index=index, label=label, note=note))
    return QueryPlan(executions, datasets)


def _skip_estimate(
    dataset: "Dataset", selector: object
) -> SkipEstimate | None:
    """Zone-map cost estimate for one plannable execution, or ``None``.

    Uses the per-stratum proxy-score mass as the expected positive
    count (the calibrated-proxy assumption :func:`plan_budget` already
    makes), so the estimate needs no oracle labels: an RT query keeps
    the smallest score tail holding ``gamma`` of the expected positive
    mass, a PT query the largest tail whose expected precision still
    meets ``gamma``.
    """
    zone_map = dataset.zone_map
    query = getattr(selector, "query", None)
    if zone_map is None or not isinstance(query, ApproxQuery):
        return None
    return zone_map.plan_estimate(
        recall=query.target_type is TargetType.RECALL, gamma=query.gamma
    )
