"""Post-hoc auditing: certify the quality of a returned set.

SUPG's guarantees are *a priori*: before seeing the labels, the
algorithm promises ``Pr[metric >= gamma] >= 1 - delta``.  Production
deployments (the paper's scientific-inference and AV settings) often
additionally want an *a posteriori* certificate for the specific set
they are about to act on: "this returned set has precision >= 0.87 and
recall >= 0.83, each with 97.5% confidence".

This module buys that certificate with a separate audit budget:

- **precision**: uniform i.i.d. draws from the returned set ``R``; the
  positive rate of the audit sample lower-bounds ``Precision(R)`` via
  an exact Clopper-Pearson bound.
- **recall**: requires bounding the matches *outside* ``R``.  The
  complement is importance-sampled with the same defensive sqrt
  weights SUPG uses, an upper confidence bound on the missed-match
  count is formed, and it is combined with the precision audit's lower
  bound on the matches inside ``R``:

      Recall(R) = |R ∩ O+| / (|R ∩ O+| + missed)
                >= (|R| * prec_lb) / (|R| * prec_lb + missed_ub).

Both certificates hold simultaneously with probability ``1 - delta``
(union bound, ``delta / 2`` each).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds import ConfidenceBound, NormalBound, clopper_pearson_lower
from ..datasets import Dataset
from ..oracle import BudgetedOracle
from ..sampling import proxy_sampling_weights, weighted_sample

__all__ = ["AuditReport", "audit_precision", "audit_recall", "audit_result"]


@dataclass(frozen=True)
class AuditReport:
    """Certified quality bounds for one returned set.

    Attributes:
        precision_lower: high-probability lower bound on Precision(R).
        precision_point: audit-sample point estimate of Precision(R).
        recall_lower: high-probability lower bound on Recall(R); None
            when the recall audit was skipped.
        missed_upper: upper confidence bound on the number of matching
            records outside R; None when the recall audit was skipped.
        labels_used: audit labels consumed.
        delta: joint failure probability of the certificate.
    """

    precision_lower: float
    precision_point: float
    recall_lower: float | None
    missed_upper: float | None
    labels_used: int
    delta: float

    def summary(self) -> str:
        """One-line human-readable certificate."""
        text = (
            f"precision >= {self.precision_lower:.3f} "
            f"(point {self.precision_point:.3f})"
        )
        if self.recall_lower is not None:
            text += f", recall >= {self.recall_lower:.3f}"
        return text + f" with probability {1 - self.delta:.3f}"


def audit_precision(
    selected: np.ndarray,
    oracle: BudgetedOracle,
    delta: float,
    budget: int,
    rng: np.random.Generator,
) -> tuple[float, float, int]:
    """Certified lower bound on the precision of a returned set.

    Args:
        selected: indices of the returned set ``R``.
        oracle: budget-enforcing oracle (audit draws charge it; records
            already labeled during selection are free, which only makes
            the audit cheaper).
        delta: failure probability of this bound.
        budget: audit draws (i.i.d. with replacement from ``R``).
        rng: randomness for the audit draws.

    Returns:
        ``(lower_bound, point_estimate, positives_seen)``.

    Raises:
        ValueError: empty selection or non-positive budget.
    """
    indices = np.asarray(selected, dtype=np.intp)
    if indices.size == 0:
        raise ValueError("cannot audit an empty returned set (it is vacuously precise)")
    if budget <= 0:
        raise ValueError(f"audit budget must be positive, got {budget}")

    draws = indices[rng.integers(0, indices.size, size=budget)]
    labels = oracle.query(draws)
    successes = int(labels.sum())
    point = successes / budget
    lower = clopper_pearson_lower(successes, budget, delta)
    return lower, point, successes


def audit_recall(
    dataset: Dataset,
    selected: np.ndarray,
    precision_lower: float,
    oracle: BudgetedOracle,
    delta: float,
    budget: int,
    rng: np.random.Generator,
    bound: ConfidenceBound | None = None,
) -> tuple[float, float]:
    """Certified lower bound on the recall of a returned set.

    Args:
        dataset: the full workload (supplies proxy scores for the
            complement's importance weights).
        selected: indices of the returned set ``R``.
        precision_lower: a ``delta``-valid lower bound on Precision(R)
            (from :func:`audit_precision`); its failure budget is
            accounted by the caller.
        oracle: budget-enforcing oracle.
        delta: failure probability of the missed-match bound.
        budget: complement draws.
        rng: randomness.
        bound: confidence-bound method for the missed-match estimate
            (defaults to the normal approximation, which handles the
            reweighted values).

    Returns:
        ``(recall_lower, missed_upper)``.
    """
    if budget <= 0:
        raise ValueError(f"audit budget must be positive, got {budget}")
    bound = bound if bound is not None else NormalBound()
    indices = np.asarray(selected, dtype=np.intp)

    mask = np.ones(dataset.size, dtype=bool)
    mask[indices] = False
    complement = np.flatnonzero(mask)
    if complement.size == 0:
        # R is the whole dataset: recall is exactly 1.
        return 1.0, 0.0

    weights = proxy_sampling_weights(dataset.proxy_scores[complement])
    sample = weighted_sample(weights, budget, rng)
    labels = oracle.query(complement[sample.indices])
    z = labels * sample.mass
    # Variance regularization (DESIGN.md D1): a complement sample with no
    # observed misses has plug-in sigma = 0 and would certify "zero
    # missed matches" — i.e. recall exactly 1 — from silence.  One
    # pseudo-miss keeps the bound honest; its effect decays as 1/n.
    z = np.append(z, float(sample.mass.mean()))
    missed_rate_ub = max(bound.upper(z, delta), 0.0)
    missed_ub = complement.size * missed_rate_ub

    found_lb = indices.size * max(precision_lower, 0.0)
    if found_lb <= 0.0:
        return 0.0, missed_ub
    recall_lb = found_lb / (found_lb + missed_ub)
    return float(np.clip(recall_lb, 0.0, 1.0)), float(missed_ub)


def audit_result(
    dataset: Dataset,
    selected: np.ndarray,
    oracle: BudgetedOracle,
    delta: float,
    budget: int,
    seed: int | np.random.Generator = 0,
) -> AuditReport:
    """Joint precision + recall certificate for a returned set.

    Splits the audit budget and the failure probability evenly between
    the precision audit (inside ``R``) and the missed-match audit
    (outside ``R``); by the union bound both bounds hold simultaneously
    with probability ``1 - delta``.

    Args:
        dataset: the workload the selection ran on.
        selected: the returned set ``R``.
        oracle: budget-enforcing oracle for the audit labels.
        delta: joint failure probability.
        budget: total audit labels (split in half).
        seed: integer seed or generator.

    Returns:
        An :class:`AuditReport`.
    """
    if budget < 2:
        raise ValueError(f"audit budget must be at least 2, got {budget}")
    rng = np.random.default_rng(seed)
    before = oracle.calls_used

    precision_budget = budget // 2
    recall_budget = budget - precision_budget
    precision_lower, precision_point, _ = audit_precision(
        selected, oracle, delta / 2.0, precision_budget, rng
    )
    recall_lower, missed_upper = audit_recall(
        dataset,
        selected,
        precision_lower,
        oracle,
        delta / 2.0,
        recall_budget,
        rng,
    )
    return AuditReport(
        precision_lower=precision_lower,
        precision_point=precision_point,
        recall_lower=recall_lower,
        missed_upper=missed_upper,
        labels_used=oracle.calls_used - before,
        delta=delta,
    )
