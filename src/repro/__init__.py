"""repro: a reproduction of "Approximate Selection with Guarantees using
Proxies" (SUPG; Kang, Gan, Bailis, Hashimoto, Zaharia — VLDB 2020).

SUPG answers approximate selection queries — "find all records matching
an expensive predicate" — using a limited budget of expensive *oracle*
labels plus cheap *proxy* confidence scores, while guaranteeing a
minimum recall or precision with bounded failure probability.

Quickstart::

    import repro

    dataset = repro.datasets.make_imagenet(seed=0)
    query = repro.ApproxQuery.recall_target(gamma=0.9, delta=0.05, budget=1000)
    result = repro.default_selector(query).select(dataset, seed=1)
    quality = repro.evaluate_selection(result.indices, dataset.labels)
    print(quality.recall, quality.precision)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.

Performance
-----------

The experiment pipeline's cost is ``trials × methods × gammas``
selector runs, and three layers keep it fast:

- **Vectorized candidate scans.**  ``precision_candidate_scan`` (used
  by U-CI-P and both IS-CI-P variants) evaluates all candidate
  thresholds with suffix cumulative statistics and one *suffix-batch*
  bound call (``ConfidenceBound.lower_batch``/``upper_batch``) instead
  of a per-candidate Python loop — ≥5× faster at paper-scale budgets.
  The loop implementation survives as
  ``precision_candidate_scan_reference`` and equivalence tests pin the
  two to the same threshold and accept set for every bound class (the
  underlying float bounds agree exactly for Clopper-Pearson and the
  bootstrap, and to rounding for the cumulative-sum-based normal and
  Hoeffding paths).
- **Cached dataset statistics.**  ``Dataset`` memoizes its sorted proxy
  scores (``Dataset.sorted_scores`` / ``Dataset.descending_scores``,
  ``Dataset.score_order``) and its defensive importance weights keyed
  by ``(exponent, mixing)`` (``Dataset.sampling_weights``), so repeated
  trials stop re-sorting and re-weighting the full dataset.  Caches are
  per-instance: ``subset``/``with_scores`` return fresh instances and
  never observe stale statistics; cached arrays are read-only because
  they are shared across trials.
- **Parallel trials.**  ``run_trials``, ``compare_methods``, ``sweep``
  (and the figure/table drivers plus ``repro experiment --jobs N``)
  accept ``n_jobs``: independent seeded trials fan out across forked
  worker processes with deterministic seed assignment, so results are
  bit-for-bit identical to the sequential path.  On platforms without
  the ``fork`` start method the runner falls back to sequential
  execution.

``scripts/perf_smoke.py`` records selector throughput to
``BENCH_PR1.json``; ``pytest -m perf benchmarks/`` runs the
microbenchmarks (excluded from the default test run).
"""

from __future__ import annotations

from . import bounds, calibrate, core, datasets, experiments, oracle, proxy, query, sampling
from .core import (
    ApproxQuery,
    BudgetPlan,
    FixedThresholdSelector,
    ImportanceCIPrecisionOneStage,
    ImportanceCIPrecisionTwoStage,
    ImportanceCIRecall,
    JointQuery,
    JointSelector,
    SelectionResult,
    Selector,
    TargetType,
    UniformCIPrecision,
    UniformCIRecall,
    UniformNoCIPrecision,
    UniformNoCIRecall,
    available_selectors,
    calibration_report,
    default_selector,
    make_selector,
    plan_budget,
)
from .datasets import Dataset, load_dataset
from .metrics import SelectionQuality, evaluate_selection, f1_score, precision, recall
from .oracle import BudgetedOracle, BudgetExhaustedError, oracle_from_labels
from .query import SupgEngine, SupgService, parse_query

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "bounds",
    "calibrate",
    "core",
    "datasets",
    "experiments",
    "oracle",
    "proxy",
    "query",
    "sampling",
    # query & result types
    "ApproxQuery",
    "SelectionResult",
    "TargetType",
    "JointQuery",
    # selectors
    "Selector",
    "UniformNoCIRecall",
    "UniformNoCIPrecision",
    "UniformCIRecall",
    "UniformCIPrecision",
    "ImportanceCIRecall",
    "ImportanceCIPrecisionOneStage",
    "ImportanceCIPrecisionTwoStage",
    "JointSelector",
    "FixedThresholdSelector",
    "available_selectors",
    "make_selector",
    "default_selector",
    "calibration_report",
    "BudgetPlan",
    "plan_budget",
    # data & oracle
    "Dataset",
    "load_dataset",
    "BudgetedOracle",
    "BudgetExhaustedError",
    "oracle_from_labels",
    # metrics
    "precision",
    "recall",
    "f1_score",
    "SelectionQuality",
    "evaluate_selection",
    # SQL layer
    "SupgEngine",
    "SupgService",
    "parse_query",
]
