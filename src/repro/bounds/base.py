"""Confidence-bound interfaces shared by all interval methods.

SUPG's validity arguments (Section 5.2 of the paper) rest on one-sided
confidence bounds for the mean of an i.i.d. sample: an upper bound ``UB``
that exceeds the sample mean with probability at most ``delta``, and a
lower bound ``LB`` that undershoots it with probability at most ``delta``.
The paper's Lemma 1 instantiates these with a normal approximation;
Section 6.4 compares against Hoeffding, Clopper-Pearson, and the
bootstrap.  Every method in :mod:`repro.bounds` implements the interface
defined here so the core algorithms can swap interval methods freely
(the fig13 ablation does exactly that).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfidenceBound",
    "SampleSummary",
    "summarize",
    "validate_delta",
]


def validate_delta(delta: float) -> float:
    """Check that ``delta`` is a usable failure probability.

    Returns the value unchanged so callers can validate inline.

    Raises:
        ValueError: if ``delta`` is not in the open interval (0, 1).
    """
    if not (0.0 < delta < 1.0):
        raise ValueError(f"failure probability delta must be in (0, 1), got {delta}")
    return delta


@dataclass(frozen=True)
class SampleSummary:
    """Sufficient statistics of a sample used by analytic bounds.

    Attributes:
        mean: sample mean.
        std: sample standard deviation (ddof=0; the plug-in estimate the
            paper uses in Algorithms 2-5).
        count: number of observations.
    """

    mean: float
    std: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"sample count must be non-negative, got {self.count}")
        if self.std < 0:
            raise ValueError(f"sample std must be non-negative, got {self.std}")


def summarize(values: np.ndarray) -> SampleSummary:
    """Compute the :class:`SampleSummary` of a 1-D array of observations."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D sample, got shape {arr.shape}")
    if arr.size == 0:
        return SampleSummary(mean=0.0, std=0.0, count=0)
    return SampleSummary(mean=float(arr.mean()), std=float(arr.std()), count=int(arr.size))


class ConfidenceBound(abc.ABC):
    """One-sided confidence bounds for the mean of an i.i.d. sample.

    Implementations must satisfy, for samples of mean ``mu``:

    - ``Pr[mu > upper(sample, delta)] <= delta`` (asymptotically for the
      normal approximation and bootstrap, exactly for Hoeffding and
      Clopper-Pearson), and symmetrically for ``lower``.
    """

    #: Short machine-readable name used in registries and benchmark output.
    name: str = "abstract"

    @abc.abstractmethod
    def upper(self, values: np.ndarray, delta: float) -> float:
        """Upper confidence bound on the population mean at level ``delta``."""

    @abc.abstractmethod
    def lower(self, values: np.ndarray, delta: float) -> float:
        """Lower confidence bound on the population mean at level ``delta``."""

    def interval(self, values: np.ndarray, delta: float) -> tuple[float, float]:
        """Two-sided interval with total failure probability ``delta``.

        Splits the budget evenly between the two tails, matching the
        paper's use of ``delta / 2`` per side in Algorithm 2.
        """
        validate_delta(delta)
        half = delta / 2.0
        return self.lower(values, half), self.upper(values, half)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def half_width_normal(std: float, count: int, delta: float) -> float:
    """Half-width ``(sigma / sqrt(s)) * sqrt(2 log(1/delta))`` from Lemma 1.

    This is the deviation term in the paper's UB/LB helper functions
    (Equations 7-8).  A zero-size sample yields an infinite half-width so
    that bounds degrade to vacuous rather than misleadingly tight values.
    """
    validate_delta(delta)
    if count <= 0:
        return math.inf
    return (std / math.sqrt(count)) * math.sqrt(2.0 * math.log(1.0 / delta))
