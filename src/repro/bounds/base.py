"""Confidence-bound interfaces shared by all interval methods.

SUPG's validity arguments (Section 5.2 of the paper) rest on one-sided
confidence bounds for the mean of an i.i.d. sample: an upper bound ``UB``
that exceeds the sample mean with probability at most ``delta``, and a
lower bound ``LB`` that undershoots it with probability at most ``delta``.
The paper's Lemma 1 instantiates these with a normal approximation;
Section 6.4 compares against Hoeffding, Clopper-Pearson, and the
bootstrap.  Every method in :mod:`repro.bounds` implements the interface
defined here so the core algorithms can swap interval methods freely
(the fig13 ablation does exactly that).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfidenceBound",
    "SampleSummary",
    "summarize",
    "suffix_min_max",
    "suffix_sums",
    "validate_batch",
    "validate_delta",
]


def validate_delta(delta: float) -> float:
    """Check that ``delta`` is a usable failure probability.

    Returns the value unchanged so callers can validate inline.

    Raises:
        ValueError: if ``delta`` is not in the open interval (0, 1).
    """
    if not (0.0 < delta < 1.0):
        raise ValueError(f"failure probability delta must be in (0, 1), got {delta}")
    return delta


@dataclass(frozen=True)
class SampleSummary:
    """Sufficient statistics of a sample used by analytic bounds.

    Attributes:
        mean: sample mean.
        std: sample standard deviation (ddof=0; the plug-in estimate the
            paper uses in Algorithms 2-5).
        count: number of observations.
    """

    mean: float
    std: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"sample count must be non-negative, got {self.count}")
        if self.std < 0:
            raise ValueError(f"sample std must be non-negative, got {self.std}")


def summarize(values: np.ndarray) -> SampleSummary:
    """Compute the :class:`SampleSummary` of a 1-D array of observations."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D sample, got shape {arr.shape}")
    if arr.size == 0:
        return SampleSummary(mean=0.0, std=0.0, count=0)
    return SampleSummary(mean=float(arr.mean()), std=float(arr.std()), count=int(arr.size))


def validate_batch(values: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a suffix-batch specification (see ``lower_batch``).

    Returns ``(values, counts)`` as float / intp arrays.

    Raises:
        ValueError: for non-1-D inputs or counts outside ``[0, len(values)]``.
    """
    arr = np.asarray(values, dtype=float)
    c = np.asarray(counts, dtype=np.intp)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D shared sample, got shape {arr.shape}")
    if c.ndim != 1:
        raise ValueError(f"expected a 1-D count array, got shape {c.shape}")
    if c.size and (int(c.min()) < 0 or int(c.max()) > arr.size):
        raise ValueError(
            f"suffix counts must lie in [0, {arr.size}], got range "
            f"[{int(c.min())}, {int(c.max())}]"
        )
    return arr, c


def suffix_sums(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Sums of the last ``counts[j]`` entries of ``values`` for each ``j``.

    One reversed cumulative sum serves every suffix, which is what lets
    the batch bound implementations replace per-candidate slicing with
    a single O(n + M) pass.
    """
    cum = np.concatenate(([0.0], np.cumsum(values[::-1], dtype=float)))
    return cum[counts]


def suffix_min_max(values: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-suffix ``(min, max)`` over the last ``counts[j]`` entries.

    Two reversed running accumulates serve every suffix; empty suffixes
    (count 0) report the ``0.0`` sentinel for both, so callers must
    mask zero counts before interpreting the values.  Shared by the
    batch bounds (observed-range Hoeffding, constant-suffix variance
    pinning) and the batch precision test (constant-mass detection).
    """
    rev = values[::-1]
    run_min = np.concatenate(([0.0], np.minimum.accumulate(rev)))
    run_max = np.concatenate(([0.0], np.maximum.accumulate(rev)))
    return run_min[counts], run_max[counts]


class ConfidenceBound(abc.ABC):
    """One-sided confidence bounds for the mean of an i.i.d. sample.

    Implementations must satisfy, for samples of mean ``mu``:

    - ``Pr[mu > upper(sample, delta)] <= delta`` (asymptotically for the
      normal approximation and bootstrap, exactly for Hoeffding and
      Clopper-Pearson), and symmetrically for ``lower``.

    Besides the scalar ``lower``/``upper``, bounds expose *suffix-batch*
    variants ``lower_batch``/``upper_batch`` evaluating many sub-samples
    of one shared array in a single call.  Batch element ``j`` is the
    bound over ``values[len(values) - counts[j]:]`` — the last
    ``counts[j]`` observations.  This shape is exactly what the
    candidate-threshold scans of Algorithms 3 and 5 need (candidates
    retain suffixes of the score-sorted sample) and lets each method
    vectorize: the closed-form bounds broadcast over suffix statistics
    and Clopper-Pearson needs one vectorized Beta-quantile call instead
    of one scipy call per candidate.
    """

    #: Short machine-readable name used in registries and benchmark output.
    name: str = "abstract"

    @abc.abstractmethod
    def upper(self, values: np.ndarray, delta: float) -> float:
        """Upper confidence bound on the population mean at level ``delta``."""

    @abc.abstractmethod
    def lower(self, values: np.ndarray, delta: float) -> float:
        """Lower confidence bound on the population mean at level ``delta``."""

    def upper_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        """Upper bounds over the suffixes ``values[-c:]`` for ``c`` in ``counts``.

        The base implementation loops over the scalar method and serves
        as the semantic reference; subclasses override it with
        vectorized equivalents.
        """
        arr, c = validate_batch(values, counts)
        return np.array([self.upper(arr[arr.size - n :], delta) for n in c], dtype=float)

    def lower_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        """Lower bounds over the suffixes ``values[-c:]`` for ``c`` in ``counts``."""
        arr, c = validate_batch(values, counts)
        return np.array([self.lower(arr[arr.size - n :], delta) for n in c], dtype=float)

    def upper_batch_mean_augmented(
        self, values: np.ndarray, counts: np.ndarray, delta: float
    ) -> np.ndarray:
        """Upper bounds over each suffix *augmented with its own mean*.

        Batch element ``j`` is ``upper(concat(suffix, [mean(suffix)]),
        delta)`` for the suffix of the last ``counts[j]`` values — the
        exact sample the weighted precision test's pseudo-record
        regularization constructs for its denominator (see
        :func:`repro.core.thresholds.precision_lower_bound_batch`).
        The augmentation is per-candidate (each suffix has its own
        mean), which is why the plain ``upper_batch`` over a shared
        array cannot express it.

        The base implementation replays the scalar arithmetic per
        suffix and serves as the semantic reference; bounds with a
        closed form (the normal approximation) override it with an
        analytic one-pass version.  Empty suffixes yield ``inf``
        (a vacuous bound), matching the scalar method on empty input.
        """
        validate_delta(delta)
        arr, c = validate_batch(values, counts)
        out = np.full(c.size, math.inf)
        for j, n in enumerate(c):
            if n == 0:
                continue
            suffix = arr[arr.size - n :]
            out[j] = self.upper(np.append(suffix, float(suffix.mean())), delta)
        return out

    def interval(self, values: np.ndarray, delta: float) -> tuple[float, float]:
        """Two-sided interval with total failure probability ``delta``.

        Splits the budget evenly between the two tails, matching the
        paper's use of ``delta / 2`` per side in Algorithm 2.
        """
        validate_delta(delta)
        half = delta / 2.0
        return self.lower(values, half), self.upper(values, half)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def half_width_normal(std: float, count: int, delta: float) -> float:
    """Half-width ``(sigma / sqrt(s)) * sqrt(2 log(1/delta))`` from Lemma 1.

    This is the deviation term in the paper's UB/LB helper functions
    (Equations 7-8).  A zero-size sample yields an infinite half-width so
    that bounds degrade to vacuous rather than misleadingly tight values.
    """
    validate_delta(delta)
    if count <= 0:
        return math.inf
    return (std / math.sqrt(count)) * math.sqrt(2.0 * math.log(1.0 / delta))
