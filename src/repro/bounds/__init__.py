"""Confidence-interval substrate for SUPG's statistical guarantees.

The default method is the normal approximation of the paper's Lemma 1
(:class:`NormalBound`); :func:`get_bound` resolves the method names used
in the Figure 13 ablation.
"""

from __future__ import annotations

from .base import (
    ConfidenceBound,
    SampleSummary,
    half_width_normal,
    suffix_min_max,
    suffix_sums,
    summarize,
    validate_batch,
    validate_delta,
)
from .bootstrap import BootstrapBound, clear_resample_cache, resample_cache_stats
from .clopper_pearson import (
    ClopperPearsonBound,
    clopper_pearson_lower,
    clopper_pearson_upper,
)
from .hoeffding import HoeffdingBound, hoeffding_half_width
from .normal import NormalBound, lower_bound, upper_bound

__all__ = [
    "ConfidenceBound",
    "resample_cache_stats",
    "clear_resample_cache",
    "SampleSummary",
    "summarize",
    "suffix_min_max",
    "suffix_sums",
    "validate_batch",
    "validate_delta",
    "half_width_normal",
    "NormalBound",
    "upper_bound",
    "lower_bound",
    "HoeffdingBound",
    "hoeffding_half_width",
    "ClopperPearsonBound",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "BootstrapBound",
    "get_bound",
    "available_bounds",
]

_BOUND_FACTORIES = {
    NormalBound.name: NormalBound,
    HoeffdingBound.name: HoeffdingBound,
    ClopperPearsonBound.name: ClopperPearsonBound,
    BootstrapBound.name: BootstrapBound,
}


def available_bounds() -> tuple[str, ...]:
    """Names of all registered confidence-bound methods."""
    return tuple(sorted(_BOUND_FACTORIES))


def get_bound(name: str, **kwargs) -> ConfidenceBound:
    """Instantiate a confidence-bound method by name.

    Args:
        name: one of :func:`available_bounds` (e.g. ``"normal"``,
            ``"hoeffding"``, ``"clopper-pearson"``, ``"bootstrap"``).
        **kwargs: forwarded to the method's constructor.

    Raises:
        KeyError: for unknown names, listing the valid options.
    """
    try:
        factory = _BOUND_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown confidence bound {name!r}; available: {', '.join(available_bounds())}"
        ) from None
    return factory(**kwargs)
