"""Normal-approximation confidence bounds (Lemma 1 of the paper).

The paper's default interval method: for an i.i.d. sample of size ``s``
with mean ``mu_hat`` and plug-in standard deviation ``sigma_hat``,

    UB(mu, sigma, s, delta) = mu + (sigma / sqrt(s)) * sqrt(2 log(1/delta))
    LB(mu, sigma, s, delta) = mu - (sigma / sqrt(s)) * sqrt(2 log(1/delta))

satisfy ``Pr[mu_hat >= UB] <= delta`` and ``Pr[mu_hat <= LB] <= delta``
asymptotically (Central Limit Theorem; the paper cites Berry-Esseen
convergence rates and reports the bound behaves well for s > 100).

These helpers are exposed both as module-level functions — mirroring the
paper's notation so the algorithm implementations read like the
pseudocode — and as a :class:`NormalBound` satisfying the
:class:`~repro.bounds.base.ConfidenceBound` interface.
"""

from __future__ import annotations

import math

import numpy as np

from .base import (
    ConfidenceBound,
    half_width_normal,
    suffix_min_max,
    suffix_sums,
    summarize,
    validate_batch,
    validate_delta,
)

__all__ = ["upper_bound", "lower_bound", "NormalBound"]


def upper_bound(mean: float, std: float, count: int, delta: float) -> float:
    """``UB(mu, sigma, s, delta)`` from Equation 7 of the paper."""
    return mean + half_width_normal(std, count, delta)


def lower_bound(mean: float, std: float, count: int, delta: float) -> float:
    """``LB(mu, sigma, s, delta)`` from Equation 8 of the paper."""
    return mean - half_width_normal(std, count, delta)


class NormalBound(ConfidenceBound):
    """Lemma 1 bounds with plug-in standard deviation estimates.

    This is the default interval method used throughout the SUPG
    algorithms; Figure 13 of the paper shows it matches or outperforms
    the alternatives while applying to both uniform and importance
    sampling (unlike Clopper-Pearson).
    """

    name = "normal"

    def upper(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        stats = summarize(np.asarray(values, dtype=float))
        return upper_bound(stats.mean, stats.std, stats.count, delta)

    def lower(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        stats = summarize(np.asarray(values, dtype=float))
        return lower_bound(stats.mean, stats.std, stats.count, delta)

    def _batch_mean_half_width(
        self, values: np.ndarray, counts: np.ndarray, delta: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Suffix means and Lemma-1 half-widths from cumulative statistics.

        One reversed cumulative sum of ``x`` and ``x**2`` yields every
        suffix's plug-in mean and standard deviation, replacing the
        per-candidate mean/std passes of the scalar path.
        """
        validate_delta(delta)
        arr, c = validate_batch(values, counts)
        safe = np.maximum(c, 1)
        # Center on the global mean before forming E[y^2] - E[y]^2: the
        # variance is shift-invariant, and centering avoids the
        # catastrophic cancellation the raw second moment suffers on
        # (near-)constant suffixes.  Round-off can still leave the
        # difference a hair negative; the population variance is not.
        shift = float(arr.mean()) if arr.size else 0.0
        centered = arr - shift
        mean_centered = suffix_sums(centered, c) / safe
        second_moment = suffix_sums(centered * centered, c) / safe
        var = np.maximum(second_moment - mean_centered * mean_centered, 0.0)
        if arr.size:
            # A constant suffix has exactly zero variance; pin it so the
            # residual cancellation noise cannot leak into the bound.
            suf_min, suf_max = suffix_min_max(arr, c)
            var = np.where(suf_min == suf_max, 0.0, var)
        mean = shift + mean_centered
        scale = math.sqrt(2.0 * math.log(1.0 / delta))
        half = np.where(c > 0, np.sqrt(var / safe) * scale, np.inf)
        mean = np.where(c > 0, mean, 0.0)
        return mean, half

    def upper_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        mean, half = self._batch_mean_half_width(values, counts, delta)
        return mean + half

    def lower_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        mean, half = self._batch_mean_half_width(values, counts, delta)
        return mean - half

    def upper_batch_mean_augmented(
        self, values: np.ndarray, counts: np.ndarray, delta: float
    ) -> np.ndarray:
        """Analytic Lemma-1 bound over each suffix plus its own mean.

        Appending a suffix's mean as one pseudo-observation leaves the
        mean unchanged and scales the plug-in variance by ``n/(n+1)``
        (the pseudo-record contributes zero squared deviation while the
        divisor grows), so for a suffix with variance ``var``:

            mean' = mean
            std'  = sqrt(var * n / (n + 1))
            count' = n + 1
            half-width = std' / sqrt(n + 1) * sqrt(2 log(1/delta))
                       = sqrt(var * n) * sqrt(2 log(1/delta)) / (n + 1)

        which needs only the suffix cumulative statistics — one
        vectorized pass instead of the per-candidate append + scalar
        bound the base class replays.  This is the batched denominator
        of the importance-weighted candidate scan; the scan equivalence
        tests pin it against the scalar reference.
        """
        validate_delta(delta)
        arr, c = validate_batch(values, counts)
        safe = np.maximum(c, 1)
        # Same centering as _batch_mean_half_width: shift-invariant
        # variance, computed without catastrophic cancellation.
        shift = float(arr.mean()) if arr.size else 0.0
        centered = arr - shift
        mean_centered = suffix_sums(centered, c) / safe
        second_moment = suffix_sums(centered * centered, c) / safe
        var = np.maximum(second_moment - mean_centered * mean_centered, 0.0)
        if arr.size:
            suf_min, suf_max = suffix_min_max(arr, c)
            var = np.where(suf_min == suf_max, 0.0, var)
        scale = math.sqrt(2.0 * math.log(1.0 / delta))
        half = np.sqrt(var * c) * scale / (c + 1)
        return np.where(c > 0, shift + mean_centered + half, np.inf)
