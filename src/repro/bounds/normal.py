"""Normal-approximation confidence bounds (Lemma 1 of the paper).

The paper's default interval method: for an i.i.d. sample of size ``s``
with mean ``mu_hat`` and plug-in standard deviation ``sigma_hat``,

    UB(mu, sigma, s, delta) = mu + (sigma / sqrt(s)) * sqrt(2 log(1/delta))
    LB(mu, sigma, s, delta) = mu - (sigma / sqrt(s)) * sqrt(2 log(1/delta))

satisfy ``Pr[mu_hat >= UB] <= delta`` and ``Pr[mu_hat <= LB] <= delta``
asymptotically (Central Limit Theorem; the paper cites Berry-Esseen
convergence rates and reports the bound behaves well for s > 100).

These helpers are exposed both as module-level functions — mirroring the
paper's notation so the algorithm implementations read like the
pseudocode — and as a :class:`NormalBound` satisfying the
:class:`~repro.bounds.base.ConfidenceBound` interface.
"""

from __future__ import annotations

import numpy as np

from .base import ConfidenceBound, half_width_normal, summarize, validate_delta

__all__ = ["upper_bound", "lower_bound", "NormalBound"]


def upper_bound(mean: float, std: float, count: int, delta: float) -> float:
    """``UB(mu, sigma, s, delta)`` from Equation 7 of the paper."""
    return mean + half_width_normal(std, count, delta)


def lower_bound(mean: float, std: float, count: int, delta: float) -> float:
    """``LB(mu, sigma, s, delta)`` from Equation 8 of the paper."""
    return mean - half_width_normal(std, count, delta)


class NormalBound(ConfidenceBound):
    """Lemma 1 bounds with plug-in standard deviation estimates.

    This is the default interval method used throughout the SUPG
    algorithms; Figure 13 of the paper shows it matches or outperforms
    the alternatives while applying to both uniform and importance
    sampling (unlike Clopper-Pearson).
    """

    name = "normal"

    def upper(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        stats = summarize(np.asarray(values, dtype=float))
        return upper_bound(stats.mean, stats.std, stats.count, delta)

    def lower(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        stats = summarize(np.asarray(values, dtype=float))
        return lower_bound(stats.mean, stats.std, stats.count, delta)
