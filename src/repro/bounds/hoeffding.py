"""Hoeffding's-inequality confidence bounds.

For observations bounded in ``[lo, hi]``, Hoeffding's inequality gives a
finite-sample (non-asymptotic) bound

    Pr[mu_hat - mu >= t] <= exp(-2 s t^2 / (hi - lo)^2)

so a one-sided deviation at failure probability ``delta`` is

    t = (hi - lo) * sqrt(log(1/delta) / (2 s)).

The paper evaluates Hoeffding in its Figure 13 ablation and observes the
bound is vacuous in the rare-positive regime because it ignores the
sample variance: with matches at a 0.1-1% rate, the variance is tiny but
Hoeffding still pays the full ``(hi - lo)`` range.  We reproduce it here
both for that ablation and as a conservative fallback for users who want
finite-sample guarantees.

For importance-sampled estimates the observations are reweighted by
``m(x) = u(x) / w(x)``, which changes their range; callers should pass
an appropriate ``value_range`` in that case.
"""

from __future__ import annotations

import math

import numpy as np

from .base import (
    ConfidenceBound,
    suffix_min_max,
    suffix_sums,
    summarize,
    validate_batch,
    validate_delta,
)

__all__ = ["hoeffding_half_width", "HoeffdingBound"]


def hoeffding_half_width(count: int, delta: float, value_range: float = 1.0) -> float:
    """One-sided Hoeffding deviation at failure probability ``delta``."""
    validate_delta(delta)
    if value_range < 0:
        raise ValueError(f"value_range must be non-negative, got {value_range}")
    if count <= 0:
        return math.inf
    return value_range * math.sqrt(math.log(1.0 / delta) / (2.0 * count))


class HoeffdingBound(ConfidenceBound):
    """Finite-sample bounds for observations with a known range.

    Args:
        value_range: width ``hi - lo`` of the support of the observations.
            Defaults to 1.0, appropriate for raw Bernoulli indicators.
            When ``None``, the range is estimated from the observed sample
            (max - min), which is convenient for reweighted samples but
            technically heuristic.
    """

    name = "hoeffding"

    def __init__(self, value_range: float | None = 1.0) -> None:
        if value_range is not None and value_range < 0:
            raise ValueError(f"value_range must be non-negative, got {value_range}")
        self.value_range = value_range

    def _range(self, values: np.ndarray) -> float:
        if self.value_range is not None:
            return self.value_range
        if values.size == 0:
            return 0.0
        observed = float(values.max() - values.min())
        # A constant sample still deserves a non-degenerate range: fall
        # back to the magnitude of the values themselves.
        if observed == 0.0:
            return max(abs(float(values.max())), 1.0)
        return observed

    def upper(self, values: np.ndarray, delta: float) -> float:
        arr = np.asarray(values, dtype=float)
        stats = summarize(arr)
        return stats.mean + hoeffding_half_width(stats.count, delta, self._range(arr))

    def lower(self, values: np.ndarray, delta: float) -> float:
        arr = np.asarray(values, dtype=float)
        stats = summarize(arr)
        return stats.mean - hoeffding_half_width(stats.count, delta, self._range(arr))

    def _batch_mean_half_width(
        self, values: np.ndarray, counts: np.ndarray, delta: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Suffix means and Hoeffding half-widths, fully broadcast."""
        validate_delta(delta)
        arr, c = validate_batch(values, counts)
        safe = np.maximum(c, 1)
        mean = np.where(c > 0, suffix_sums(arr, c) / safe, 0.0)
        if self.value_range is not None:
            rng = np.full(c.size, float(self.value_range))
        elif arr.size == 0:
            rng = np.zeros(c.size)
        else:
            # Per-suffix observed range via reversed running min/max;
            # mirror the scalar fallback for constant suffixes.
            suf_min, suf_max = suffix_min_max(arr, c)
            observed = suf_max - suf_min
            fallback = np.maximum(np.abs(suf_max), 1.0)
            rng = np.where(observed == 0.0, fallback, observed)
            rng = np.where(c > 0, rng, 0.0)
        half = np.where(c > 0, rng * np.sqrt(np.log(1.0 / delta) / (2.0 * safe)), np.inf)
        return mean, half

    def upper_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        mean, half = self._batch_mean_half_width(values, counts, delta)
        return mean + half

    def lower_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        mean, half = self._batch_mean_half_width(values, counts, delta)
        return mean - half
