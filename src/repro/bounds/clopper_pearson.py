"""Clopper-Pearson ("exact") binomial confidence bounds.

The Clopper-Pearson interval inverts the Binomial CDF to obtain bounds on
a Bernoulli success probability that hold exactly at every sample size.
The one-sided bounds in terms of the Beta distribution are, for ``k``
successes in ``n`` trials:

    lower = BetaInv(delta;     k,     n - k + 1)
    upper = BetaInv(1 - delta; k + 1, n - k)

with the conventions ``lower = 0`` when ``k = 0`` and ``upper = 1`` when
``k = n``.

The paper includes Clopper-Pearson in its Figure 13 ablation but notes it
only applies to *uniform* sampling: importance-sampled estimates are
weighted averages of non-identically-ranged terms, not Binomial counts.
:class:`ClopperPearsonBound` therefore rejects non-binary inputs loudly
rather than returning a silently wrong interval.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from .base import ConfidenceBound, suffix_sums, validate_batch, validate_delta

__all__ = ["clopper_pearson_lower", "clopper_pearson_upper", "ClopperPearsonBound"]


def clopper_pearson_lower(successes: int, trials: int, delta: float) -> float:
    """One-sided lower Clopper-Pearson bound on a Binomial proportion."""
    validate_delta(delta)
    _validate_counts(successes, trials)
    if trials == 0:
        return 0.0
    if successes == 0:
        return 0.0
    return float(scipy_stats.beta.ppf(delta, successes, trials - successes + 1))


def clopper_pearson_upper(successes: int, trials: int, delta: float) -> float:
    """One-sided upper Clopper-Pearson bound on a Binomial proportion."""
    validate_delta(delta)
    _validate_counts(successes, trials)
    if trials == 0:
        return 1.0
    if successes == trials:
        return 1.0
    return float(scipy_stats.beta.ppf(1.0 - delta, successes + 1, trials - successes))


def _validate_counts(successes: int, trials: int) -> None:
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not (0 <= successes <= trials or trials == 0 and successes == 0):
        raise ValueError(f"successes must be in [0, trials], got {successes}/{trials}")


class ClopperPearsonBound(ConfidenceBound):
    """Exact binomial bounds; valid only for 0/1 observations.

    Raises:
        ValueError: if the sample contains values other than 0 and 1,
            since the exact interval has no meaning for reweighted
            (importance-sampled) observations.
    """

    name = "clopper-pearson"

    @staticmethod
    def _counts(values: np.ndarray) -> tuple[int, int]:
        arr = np.asarray(values, dtype=float)
        if arr.size and not np.all(np.isin(arr, (0.0, 1.0))):
            raise ValueError(
                "Clopper-Pearson applies only to binary (0/1) samples; "
                "use the normal approximation for importance-weighted data"
            )
        return int(arr.sum()), int(arr.size)

    def upper(self, values: np.ndarray, delta: float) -> float:
        successes, trials = self._counts(values)
        return clopper_pearson_upper(successes, trials, delta)

    def lower(self, values: np.ndarray, delta: float) -> float:
        successes, trials = self._counts(values)
        return clopper_pearson_lower(successes, trials, delta)

    def _batch_counts(
        self, values: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        arr, c = validate_batch(values, counts)
        if arr.size and not np.all(np.isin(arr, (0.0, 1.0))):
            raise ValueError(
                "Clopper-Pearson applies only to binary (0/1) samples; "
                "use the normal approximation for importance-weighted data"
            )
        # Cumulative sums of 0/1 indicators are exact in float64 far
        # beyond any realistic sample size, so the suffix success counts
        # match the scalar path's per-slice sums bit for bit.
        successes = suffix_sums(arr, c)
        return successes, c

    def upper_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        validate_delta(delta)
        successes, trials = self._batch_counts(values, counts)
        out = np.ones(trials.size)
        interior = (trials > 0) & (successes < trials)
        if np.any(interior):
            k = successes[interior]
            n = trials[interior].astype(float)
            out[interior] = scipy_stats.beta.ppf(1.0 - delta, k + 1.0, n - k)
        return out

    def lower_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        validate_delta(delta)
        successes, trials = self._batch_counts(values, counts)
        out = np.zeros(trials.size)
        interior = (trials > 0) & (successes > 0)
        if np.any(interior):
            k = successes[interior]
            n = trials[interior].astype(float)
            out[interior] = scipy_stats.beta.ppf(delta, k, n - k + 1.0)
        return out
