"""Percentile-bootstrap confidence bounds.

The bootstrap estimates the sampling distribution of the mean by
resampling the observed data with replacement and taking empirical
quantiles of the resampled means.  The paper compares it in the
Figure 13 ablation, where it performs comparably to the normal
approximation but costs ``n_resamples`` times more computation.

The implementation is vectorized: all resamples are drawn as one
``(n_resamples, n)`` index matrix and reduced along the last axis.

Two batch modes exist for the suffix-batch API the candidate scans use:

- **Default** (``share_matrix=False``): one index matrix per distinct
  suffix length, reseeded per length, which reproduces the scalar
  ``lower``/``upper`` bit for bit (the guarantee tests pin this).
- **Shared** (``share_matrix=True``): one ``(n_resamples, n_max)``
  uniform matrix drawn once and rescaled per suffix length, so an
  M-length batch pays for one generator pass instead of M.  The
  resample indices differ from the scalar path (a different — equally
  valid — RNG contract), so batch results agree with the scalar bound
  only statistically, not bit-exactly.

Resampled means are additionally memoized in a small module-level LRU
keyed by (sample content digest, n_resamples, seed).  Bound-ablation
panels (Figure 13) evaluate several bootstrap-bound methods over one
store-shared labeled sample, so without the cache every method redraws
and re-reduces the same ``(n_resamples, n)`` matrix; with it, the
means are computed once per distinct sample and replayed bit-exactly
(the quantile, which depends on delta, stays per-call).  Inspect or
reset with :func:`resample_cache_stats` / :func:`clear_resample_cache`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from .base import ConfidenceBound, validate_batch, validate_delta

__all__ = ["BootstrapBound", "resample_cache_stats", "clear_resample_cache"]

#: LRU of resampled-mean vectors.  At the default 1000 resamples an
#: entry is ~8 KB, so the cap bounds the cache near half a megabyte.
_RESAMPLE_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_RESAMPLE_CACHE_MAX_ENTRIES = 64
_CACHE_COUNTERS = {"hits": 0, "misses": 0}


def resample_cache_stats() -> dict[str, int]:
    """Hit/miss counters and current size of the resample-mean cache."""
    return {**_CACHE_COUNTERS, "entries": len(_RESAMPLE_CACHE)}


def clear_resample_cache() -> None:
    """Drop every cached resample-mean vector and reset the counters."""
    _RESAMPLE_CACHE.clear()
    _CACHE_COUNTERS["hits"] = 0
    _CACHE_COUNTERS["misses"] = 0


class BootstrapBound(ConfidenceBound):
    """Percentile bootstrap for the sample mean.

    Args:
        n_resamples: number of bootstrap resamples.  The paper does not
            specify; 1000 is the conventional default.
        seed: seed for the internal resampling generator.  Bounds are a
            deterministic function of (sample, delta) for a fixed seed,
            which keeps the SUPG guarantee analysis well-defined and the
            tests reproducible.
        share_matrix: opt into the shared-resample-matrix batch mode
            (see the module docstring).  ``lower_batch``/``upper_batch``
            then draw one uniform ``(n_resamples, max(counts))`` matrix
            and derive every suffix length's indices from it, instead
            of reseeding per length — still deterministic for a fixed
            seed, but no longer bit-identical to the scalar methods
            (only statistically equivalent).  Scalar ``lower``/``upper``
            are unaffected.
    """

    name = "bootstrap"

    def __init__(
        self, n_resamples: int = 1000, seed: int = 0, share_matrix: bool = False
    ) -> None:
        if n_resamples < 1:
            raise ValueError(f"n_resamples must be positive, got {n_resamples}")
        self.n_resamples = n_resamples
        self.seed = seed
        self.share_matrix = share_matrix

    def _resampled_means(self, values: np.ndarray) -> np.ndarray:
        """Means of ``n_resamples`` with-replacement resamples of ``values``.

        Memoized by (content digest, n_resamples, seed): the result is
        a pure function of those three, so a cache hit is bit-identical
        to recomputation.  Hashing the sample (~µs) replaces drawing
        and reducing an ``(n_resamples, n)`` matrix (~ms at paper
        scale) whenever the same labeled sample is scanned again — the
        fig13 panels' store-shared samples, repeated gammas, suffix
        batches revisiting a length.
        """
        key = (
            hashlib.sha1(values.tobytes()).hexdigest(),
            values.dtype.str,
            values.size,
            self.n_resamples,
            self.seed,
        )
        cached = _RESAMPLE_CACHE.get(key)
        if cached is not None:
            _RESAMPLE_CACHE.move_to_end(key)
            _CACHE_COUNTERS["hits"] += 1
            return cached
        rng = np.random.default_rng(self.seed)
        n = values.size
        idx = rng.integers(0, n, size=(self.n_resamples, n))
        means = values[idx].mean(axis=1)
        means.flags.writeable = False  # shared across callers
        _RESAMPLE_CACHE[key] = means
        _CACHE_COUNTERS["misses"] += 1
        while len(_RESAMPLE_CACHE) > _RESAMPLE_CACHE_MAX_ENTRIES:
            _RESAMPLE_CACHE.popitem(last=False)
        return means

    def upper(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return float("inf")
        means = self._resampled_means(arr)
        return float(np.quantile(means, 1.0 - delta))

    def lower(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return float("-inf")
        means = self._resampled_means(arr)
        return float(np.quantile(means, delta))

    def _batch_quantiles(
        self, values: np.ndarray, counts: np.ndarray, q: float, empty: float
    ) -> np.ndarray:
        """Bootstrap quantiles for many suffixes of one shared sample.

        The scalar bound reseeds its generator per call, so the resample
        index matrix is a deterministic function of the suffix *length*
        alone — suffixes of equal length share one matrix and one
        vectorized mean-reduction.  (A single matrix shared across
        different lengths would be cheaper still, but its draws could
        not reproduce the scalar path bit for bit, and the guarantee
        tests pin batch == scalar exactly — ``share_matrix=True`` opts
        into exactly that trade, via :meth:`_shared_batch_quantiles`.)
        """
        arr, c = validate_batch(values, counts)
        if self.share_matrix:
            return self._shared_batch_quantiles(arr, c, q, empty)
        out = np.full(c.size, empty)
        for n in np.unique(c):
            if n == 0:
                continue
            suffix = arr[arr.size - n :]
            value = float(np.quantile(self._resampled_means(suffix), q))
            out[c == n] = value
        return out

    def _shared_batch_quantiles(
        self, arr: np.ndarray, c: np.ndarray, q: float, empty: float
    ) -> np.ndarray:
        """Shared-matrix batch mode: one uniform draw serves every length.

        A uniform variate ``u`` rescales to a valid resample index for
        *any* suffix length ``n`` via ``floor(u * n)``, so a single
        ``(n_resamples, max(counts))`` matrix replaces the per-length
        generator passes — the dominant cost when the batch spans many
        distinct lengths.  Per-suffix means are still reduced per
        length (that work is inherent to the estimator).
        """
        out = np.full(c.size, empty)
        lengths = np.unique(c[c > 0])
        if lengths.size == 0:
            return out
        rng = np.random.default_rng(self.seed)
        u = rng.random((self.n_resamples, int(lengths.max())))
        for n in lengths:
            suffix = arr[arr.size - n :]
            # floor(u * n) < n for u in [0, 1); clip guards the
            # measure-zero u == 1.0 edge that float rounding can hit.
            idx = np.minimum((u[:, :n] * n).astype(np.intp), n - 1)
            means = suffix[idx].mean(axis=1)
            out[c == n] = float(np.quantile(means, q))
        return out

    def upper_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        validate_delta(delta)
        return self._batch_quantiles(values, counts, 1.0 - delta, float("inf"))

    def lower_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        validate_delta(delta)
        return self._batch_quantiles(values, counts, delta, float("-inf"))
