"""Percentile-bootstrap confidence bounds.

The bootstrap estimates the sampling distribution of the mean by
resampling the observed data with replacement and taking empirical
quantiles of the resampled means.  The paper compares it in the
Figure 13 ablation, where it performs comparably to the normal
approximation but costs ``n_resamples`` times more computation.

The implementation is vectorized: all resamples are drawn as one
``(n_resamples, n)`` index matrix and reduced along the last axis.
"""

from __future__ import annotations

import numpy as np

from .base import ConfidenceBound, validate_batch, validate_delta

__all__ = ["BootstrapBound"]


class BootstrapBound(ConfidenceBound):
    """Percentile bootstrap for the sample mean.

    Args:
        n_resamples: number of bootstrap resamples.  The paper does not
            specify; 1000 is the conventional default.
        seed: seed for the internal resampling generator.  Bounds are a
            deterministic function of (sample, delta) for a fixed seed,
            which keeps the SUPG guarantee analysis well-defined and the
            tests reproducible.
    """

    name = "bootstrap"

    def __init__(self, n_resamples: int = 1000, seed: int = 0) -> None:
        if n_resamples < 1:
            raise ValueError(f"n_resamples must be positive, got {n_resamples}")
        self.n_resamples = n_resamples
        self.seed = seed

    def _resampled_means(self, values: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        n = values.size
        idx = rng.integers(0, n, size=(self.n_resamples, n))
        return values[idx].mean(axis=1)

    def upper(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return float("inf")
        means = self._resampled_means(arr)
        return float(np.quantile(means, 1.0 - delta))

    def lower(self, values: np.ndarray, delta: float) -> float:
        validate_delta(delta)
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return float("-inf")
        means = self._resampled_means(arr)
        return float(np.quantile(means, delta))

    def _batch_quantiles(
        self, values: np.ndarray, counts: np.ndarray, q: float, empty: float
    ) -> np.ndarray:
        """Bootstrap quantiles for many suffixes of one shared sample.

        The scalar bound reseeds its generator per call, so the resample
        index matrix is a deterministic function of the suffix *length*
        alone — suffixes of equal length share one matrix and one
        vectorized mean-reduction.  (A single matrix shared across
        different lengths would be cheaper still, but its draws could
        not reproduce the scalar path bit for bit, and the guarantee
        tests pin batch == scalar exactly.)
        """
        arr, c = validate_batch(values, counts)
        out = np.full(c.size, empty)
        for n in np.unique(c):
            if n == 0:
                continue
            suffix = arr[arr.size - n :]
            value = float(np.quantile(self._resampled_means(suffix), q))
            out[c == n] = value
        return out

    def upper_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        validate_delta(delta)
        return self._batch_quantiles(values, counts, 1.0 - delta, float("inf"))

    def lower_batch(self, values: np.ndarray, counts: np.ndarray, delta: float) -> np.ndarray:
        validate_delta(delta)
        return self._batch_quantiles(values, counts, delta, float("-inf"))
