"""Result-quality metrics for selection queries (Section 3 of the paper).

Precision and recall of a returned set ``R`` against the true matching
set ``O+``:

    Precision(R) = |R ∩ O+| / |R|        Recall(R) = |R ∩ O+| / |O+|

Conventions for degenerate cases follow the query semantics: an empty
result is vacuously precise (precision 1) and a dataset with no
positives is vacuously recalled (recall 1); both conventions make the
"always valid" results of Section 3.3 (empty set for PT, full dataset
for RT) behave as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["precision", "recall", "f1_score", "SelectionQuality", "evaluate_selection"]


def _as_index_set(indices: np.ndarray) -> np.ndarray:
    arr = np.asarray(indices, dtype=np.intp).ravel()
    # Selection results arrive sorted and distinct (they come off
    # np.union1d / np.unique), so checking is ~50x cheaper than
    # unconditionally re-uniquing; np.unique remains the fallback for
    # arbitrary caller input.
    if arr.size == 0 or bool(np.all(arr[1:] > arr[:-1])):
        return arr
    return np.unique(arr)


def precision(selected: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of selected records that truly match.

    Args:
        selected: indices of the returned set ``R`` (duplicates ignored).
        labels: full ground-truth label array over the dataset.
    """
    sel = _as_index_set(selected)
    if sel.size == 0:
        return 1.0
    lab = np.asarray(labels)
    return float(lab[sel].sum() / sel.size)


def recall(selected: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of true matches that were returned."""
    lab = np.asarray(labels)
    total = int(lab.sum())
    if total == 0:
        return 1.0
    sel = _as_index_set(selected)
    if sel.size == 0:
        return 0.0
    return float(lab[sel].sum() / total)


def f1_score(selected: np.ndarray, labels: np.ndarray) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    p = precision(selected, labels)
    r = recall(selected, labels)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


@dataclass(frozen=True)
class SelectionQuality:
    """Precision/recall/size summary of one returned set."""

    precision: float
    recall: float
    size: int

    @property
    def f1(self) -> float:
        """Harmonic mean of the stored precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_selection(
    selected: np.ndarray,
    labels: np.ndarray,
    positive_total: int | None = None,
) -> SelectionQuality:
    """Score a returned set against ground truth.

    Deduplicates ``selected`` once and shares the true-positive count
    between both metrics (the separate :func:`precision` /
    :func:`recall` helpers each redo that work, which the trial runner
    cannot afford at one call per trial).

    Args:
        selected: indices of the returned set ``R`` (duplicates ignored).
        labels: full ground-truth label array over the dataset.
        positive_total: optionally, the precomputed ``labels.sum()``
            (e.g. ``Dataset.positive_count``), sparing an O(n) pass per
            evaluation.  Must equal the array sum when given.
    """
    sel = _as_index_set(selected)
    lab = np.asarray(labels)
    total = int(lab.sum()) if positive_total is None else int(positive_total)
    hits = lab[sel].sum() if sel.size else 0
    return SelectionQuality(
        precision=1.0 if sel.size == 0 else float(hits / sel.size),
        recall=1.0 if total == 0 else (0.0 if sel.size == 0 else float(hits / total)),
        size=int(sel.size),
    )
