"""Result-quality metrics for selection queries (Section 3 of the paper).

Precision and recall of a returned set ``R`` against the true matching
set ``O+``:

    Precision(R) = |R ∩ O+| / |R|        Recall(R) = |R ∩ O+| / |O+|

Conventions for degenerate cases follow the query semantics: an empty
result is vacuously precise (precision 1) and a dataset with no
positives is vacuously recalled (recall 1); both conventions make the
"always valid" results of Section 3.3 (empty set for PT, full dataset
for RT) behave as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["precision", "recall", "f1_score", "SelectionQuality", "evaluate_selection"]


def _as_index_set(indices: np.ndarray) -> np.ndarray:
    arr = np.asarray(indices, dtype=np.intp).ravel()
    return np.unique(arr)


def precision(selected: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of selected records that truly match.

    Args:
        selected: indices of the returned set ``R`` (duplicates ignored).
        labels: full ground-truth label array over the dataset.
    """
    sel = _as_index_set(selected)
    if sel.size == 0:
        return 1.0
    lab = np.asarray(labels)
    return float(lab[sel].sum() / sel.size)


def recall(selected: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of true matches that were returned."""
    lab = np.asarray(labels)
    total = int(lab.sum())
    if total == 0:
        return 1.0
    sel = _as_index_set(selected)
    if sel.size == 0:
        return 0.0
    return float(lab[sel].sum() / total)


def f1_score(selected: np.ndarray, labels: np.ndarray) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    p = precision(selected, labels)
    r = recall(selected, labels)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


@dataclass(frozen=True)
class SelectionQuality:
    """Precision/recall/size summary of one returned set."""

    precision: float
    recall: float
    size: int

    @property
    def f1(self) -> float:
        """Harmonic mean of the stored precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_selection(selected: np.ndarray, labels: np.ndarray) -> SelectionQuality:
    """Score a returned set against ground truth."""
    sel = _as_index_set(selected)
    return SelectionQuality(
        precision=precision(sel, labels),
        recall=recall(sel, labels),
        size=int(sel.size),
    )
