"""Continuously running SUPG service: admission queue + plan windows.

:class:`~repro.query.engine.SupgEngine` executes one query (or one
*static* batch) per call.  A production deployment looks different:
queries arrive continuously from concurrent clients, and the paper's
cost model — charge per distinct labeled record — rewards any two
in-flight queries that can legally share an oracle draw.  This module
adds the admission/scheduling layer that makes such sharing happen
without any client coordinating with any other, in the spirit of
GraftDB's dynamic folding of concurrent analytical queries: arrivals
are queued, batched into *plan windows*, and each window is compiled
through the batch planner so queries sharing a
``(dataset fingerprint × SampleDesign × seed)`` group pay for exactly
one oracle draw.

The moving parts:

- :class:`SupgService` — owns a long-lived engine and a scheduler
  thread.  :meth:`~SupgService.submit` enqueues one statement and
  returns immediately with a :class:`SubmitTicket`.
- **Plan windows** — the scheduler closes the open window when it
  holds ``max_window_queries`` statements *or* ``max_window_ms`` has
  elapsed since the window's first arrival, whichever comes first.  A
  closed window is compiled, grouped via
  :func:`~repro.core.planning.plan_executions`, pre-drawn (each
  distinct design exactly once — spilled to disk when the engine has a
  ``store_dir``), then executed, with results routed back to each
  submitter's ticket.
- **Late folding** — after a window's groups are pre-drawn but before
  it executes, arrivals still sitting in the queue whose group is
  already warm are folded into the executing window
  (:meth:`~repro.core.planning.QueryPlan.fold`) instead of waiting for
  the next one: their draw is already paid for, so folding them is
  free labels and lower latency.

Results are bit-identical to a sequential ``engine.execute()`` loop
over the same statements in arrival order: window membership only
decides *when* a query runs and which draws are shared, never what any
query returns.

Overload behavior
-----------------

Admission is bounded and failure under load is *typed*, never silent:

- ``max_queue_depth`` caps the pending queue.  A full queue resolves
  per the ``admission`` mode: ``"block"`` (wait for space, up to
  ``admission_timeout_s``, then raise :class:`AdmissionRejected`),
  ``"reject"`` (raise :class:`AdmissionRejected` immediately, with a
  ``retry_after_hint``), or ``"shed_oldest"`` (fail the oldest queued
  *batch-lane* ticket with :class:`QueryShedError` and admit the new
  arrival).  All three paths are counted in :meth:`session_stats`
  (``admitted`` / ``rejected`` / ``shed`` / ``blocked_ms``).
- Tickets carry a ``client_id`` and a ``lane`` (``"interactive"`` or
  ``"batch"``).  Window membership is chosen by equal-weight
  round-robin across clients, so one flooding client cannot starve
  others, and the scheduler dispatches at most
  ``max_interactive_staleness`` batch windows while an interactive
  ticket is pending — the interactive lane's bounded-staleness
  guarantee.
- With ``max_inflight_windows > 1``, windows over disjoint
  ``(table, seed)`` groups execute concurrently on worker threads,
  each budgeted a fair share of the service's ``jobs`` via
  :func:`~repro.core.planning.worker_share`.
- An optional :class:`~repro.oracle.retry.OracleCircuitBreaker` trips
  after N consecutive :class:`~repro.oracle.retry.OracleUnavailableError`
  draws; while open, windows fail fast with typed errors instead of
  burning every ticket's full retry budget, and half-open probes
  re-close the breaker once the oracle recovers.
- ``window_log`` is a ring buffer (``window_log_limit`` records) with
  monotonic cumulative counters, so a week-long serve run does not
  grow memory without bound; :meth:`health` snapshots queue depth,
  inflight windows, breaker state, and per-lane latency percentiles.

Failure semantics
-----------------

Sharing a window must never mean sharing a failure.  The isolation
rules, outermost first:

- A statement that fails — selector error, budget exhaustion, a
  permanently unavailable oracle — fails only its *own* ticket, with a
  :class:`QueryError` carrying the window id and the underlying cause.
  Window-mates proceed normally.  (Compile-time errors such as an
  unknown table surface raw, exactly as ``engine.execute()`` would
  raise them.)
- A prewarm draw that fails takes down only the executions that
  needed that draw; the window's other groups still warm and execute.
- A fork worker that dies mid-window is detected
  (``BrokenProcessPool``), and its groups are re-executed sequentially
  in the parent from the already pre-drawn store — bit-identical
  results, logged as ``recovered_groups``.
- With ``window_deadline_s`` set, a window that hangs past the
  deadline is abandoned: its unfinished tickets fail with a
  :class:`QueryError` and the scheduler moves on.
- If the scheduler thread itself dies, every queued and in-flight
  ticket is failed with the scheduler's exception — ``result()``
  never blocks forever on a dead service — and later ``submit()``
  calls raise immediately.
- ``close(drain=True, timeout=...)`` bounds the final drain; whatever
  is still unfinished when the timeout expires fails with a
  :class:`QueryError` instead of blocking shutdown.

Example::

    engine = SupgEngine(store_dir="/var/cache/supg")
    engine.register_table("frames", dataset)
    with SupgService(engine, max_window_queries=8, max_window_ms=25.0) as service:
        tickets = [service.submit(sql) for sql in statements]
        rows = [ticket.result(timeout=60.0) for ticket in tickets]
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..core.planning import effective_workers, resolve_n_jobs, worker_share
from ..oracle.retry import (
    CircuitOpenError,
    OracleCircuitBreaker,
    OracleUnavailableError,
)
from .engine import QueryExecution, SupgEngine
from .parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ast import ParsedQuery

__all__ = [
    "SupgService",
    "SubmitTicket",
    "QueryError",
    "QueryShedError",
    "AdmissionRejected",
]

#: Default window-close thresholds: small enough that an interactive
#: client never waits noticeably, large enough that a burst of
#: concurrent submissions lands in one window.
DEFAULT_WINDOW_QUERIES = 8
DEFAULT_WINDOW_MS = 25.0

#: Ring-buffer capacity for per-window records (cumulative counters
#: keep counting past it).
DEFAULT_WINDOW_LOG_LIMIT = 512

#: Per-lane latency samples kept for the health snapshot's percentiles.
LANE_LATENCY_SAMPLES = 2048

#: The two scheduling lanes a ticket may ride.
LANES = ("interactive", "batch")

#: Admission modes for a full queue.
ADMISSION_MODES = ("block", "reject", "shed_oldest")


class QueryError(RuntimeError):
    """One query's failure, isolated to its own ticket.

    Embeds the underlying cause's message (so existing ``match=``
    patterns keep working) and carries structured context for
    programmatic handling.

    Attributes:
        number: the failed query's submission number, when known.
        window: index into :attr:`SupgService.window_log` of the window
            that failed it, when known.
        phase: where the failure happened (``"planning"``,
            ``"execution"``, ``"deadline"``, ``"scheduler"``,
            ``"shutdown"``, ``"admission"``, ``"breaker"``,
            ``"cancelled"``).
        cause: the underlying exception, when one exists (also chained
            as ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        number: int | None = None,
        window: int | None = None,
        phase: str | None = None,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.number = number
        self.window = window
        self.phase = phase
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause

    @classmethod
    def wrap(
        cls,
        cause: BaseException,
        number: int | None = None,
        window: int | None = None,
        phase: str = "execution",
    ) -> "QueryError":
        """Wrap an underlying failure with query/window context."""
        return cls(
            f"query #{number} failed during {phase} in window {window}: {cause}",
            number=number,
            window=window,
            phase=phase,
            cause=cause,
        )


class QueryShedError(QueryError):
    """A queued ticket sacrificed under overload (``shed_oldest``).

    The shed query never executed; resubmitting it is always safe.
    """


class AdmissionRejected(RuntimeError):
    """``submit()`` refused a statement because the queue is full.

    Raised in the *submitting* client (no ticket exists), so callers
    can apply backpressure — wait ``retry_after_hint`` seconds and
    resubmit.

    Attributes:
        queue_depth: pending statements at rejection time.
        retry_after_hint: suggested wait before resubmitting, in
            seconds (roughly one plan window).
    """

    def __init__(
        self, message: str, queue_depth: int = 0, retry_after_hint: float = 0.0
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.retry_after_hint = retry_after_hint


class SubmitTicket:
    """Future-style handle for one submitted query.

    Returned immediately by :meth:`SupgService.submit`; the result
    arrives when the query's plan window executes.

    Attributes:
        number: the service-wide submission number (arrival order).
        sql: the submitted statement text.
        client_id: the submitting client's identity (fairness unit).
        lane: ``"interactive"`` or ``"batch"``.
        window: index of the plan window that served the query (into
            :attr:`SupgService.window_log`), set on completion.
        state: where the query is in its lifecycle — ``"queued"``
            (waiting for a window), ``"executing"`` (its window is
            running), ``"folded"`` (absorbed late into an executing
            window), ``"cancelled"``, ``"done"``.  Included in timeout
            errors so a hung ``result()`` call says what it was
            waiting on.
    """

    def __init__(
        self,
        number: int,
        sql: str,
        client_id: str = "default",
        lane: str = "batch",
    ) -> None:
        self.number = number
        self.sql = sql
        self.client_id = client_id
        self.lane = lane
        self.window: int | None = None
        self.state = "queued"
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: QueryExecution | None = None
        self._exception: BaseException | None = None
        self._dispatched = False
        self._cancel_hook: Callable[[], None] | None = None

    def done(self) -> bool:
        """Whether the query has finished (successfully or not)."""
        return self._event.is_set()

    def cancel(self) -> bool:
        """Cancel the query if it has not been dispatched to a window.

        Returns ``True`` when the cancellation won: the ticket resolves
        immediately with a :class:`QueryError` (``phase="cancelled"``),
        the statement never executes, and the service counts it in
        ``session_stats()["cancelled"]``.  Returns ``False`` once the
        query is already in flight (or finished) — an executing window
        cannot be unwound.
        """
        with self._lock:
            if self._event.is_set() or self._dispatched:
                return False
            self.state = "cancelled"
            self._exception = QueryError(
                f"query #{self.number} cancelled before dispatch",
                number=self.number,
                phase="cancelled",
            )
            self._event.set()
        # Outside the ticket lock: the hook takes the service's arrival
        # lock, and the scheduler takes ticket locks *under* it — the
        # release above is what keeps the orderings acyclic.
        hook = self._cancel_hook
        if hook is not None:
            hook()
        return True

    def _mark_dispatched(self) -> bool:
        """Claim the ticket for a window; loses to an earlier cancel."""
        with self._lock:
            if self.state == "cancelled" or self._event.is_set():
                return False
            self._dispatched = True
            return True

    def _timeout_error(self, timeout: float | None) -> TimeoutError:
        return TimeoutError(
            f"query #{self.number} did not complete within {timeout}s "
            f"(state: {self.state})"
        )

    def result(self, timeout: float | None = None) -> QueryExecution:
        """Block until the window executes; return the execution.

        Raises:
            TimeoutError: the window did not complete within ``timeout``
                seconds; the message includes the ticket's current
                :attr:`state`.
            Exception: whatever the execution itself raised.
        """
        if not self._event.wait(timeout):
            raise self._timeout_error(timeout)
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done; return the error (or ``None`` on success)."""
        if not self._event.wait(timeout):
            raise self._timeout_error(timeout)
        return self._exception

    def _finish(
        self,
        result: QueryExecution | None = None,
        error: BaseException | None = None,
        window: int | None = None,
    ) -> bool:
        """Resolve the ticket; idempotent (the first resolution wins).

        Idempotence is what makes the failure paths composable: a
        deadline abandonment, a scheduler-crash sweep, a cancel, and
        the (possibly still running) window execution may all try to
        finish the same ticket, and exactly one of them succeeds.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._result = result
            self._exception = error
            self.window = window
            self.state = "done"
            self._event.set()
            return True


@dataclass
class _Submission:
    """One queued query: parsed statement plus its execution parameters."""

    parsed: "ParsedQuery"
    seed: int
    method: str | None
    stage_budget: int
    selector_kwargs: Mapping[str, object]
    ticket: SubmitTicket
    client_id: str = "default"
    lane: str = "batch"
    arrived: float = field(default_factory=time.monotonic)


class SupgService:
    """Admission queue over a long-lived engine, batching into plan windows.

    Args:
        engine: the engine to serve (register its tables and UDFs
            before submitting queries).  The service owns the engine's
            execution schedule, not its registrations.
        max_window_queries: close the open window once it holds this
            many statements.
        max_window_ms: close the open window this many milliseconds
            after its first statement arrived, even if not full.
        jobs: worker processes for each window's group fan-out
            (``-1`` = all cores; ``None``/``1`` = in-thread).  With
            concurrent windows the budget is split across them via
            :func:`~repro.core.planning.worker_share`.  On platforms
            without ``fork`` the service warns once and runs windows
            sequentially.
        default_seed: seed for submissions that do not pass one.
        stage_budget: stage-1/2 budget for joint-target queries.
        window_deadline_s: wall-clock budget for one window's
            planning + execution; a window still running past it is
            abandoned (its unfinished tickets fail with
            :class:`QueryError`) and the scheduler moves on.  ``None``
            (the default) never aborts.
        max_queue_depth: cap on queued (not yet dispatched)
            submissions; ``None`` (the default) admits unboundedly.
        admission: what a full queue does to ``submit()`` —
            ``"block"`` (default), ``"reject"``, or ``"shed_oldest"``.
        admission_timeout_s: how long ``"block"`` admission waits for
            queue space before raising :class:`AdmissionRejected`;
            ``None`` waits forever.
        default_client: ``client_id`` for submissions that pass none.
        default_lane: lane for submissions that pass none
            (``"batch"``).
        max_interactive_staleness: K in the bounded-staleness
            guarantee — at most K batch windows are dispatched while an
            interactive ticket waits.
        max_inflight_windows: windows executing concurrently (worker
            threads); windows sharing a coarse ``(table, seed)`` group
            never overlap.  ``1`` (the default) executes windows
            in-line on the scheduler thread.
        window_log_limit: ring-buffer capacity of :attr:`window_log`.
        breaker: optional
            :class:`~repro.oracle.retry.OracleCircuitBreaker` guarding
            the oracle-touching prewarm path.
    """

    def __init__(
        self,
        engine: SupgEngine,
        max_window_queries: int = DEFAULT_WINDOW_QUERIES,
        max_window_ms: float = DEFAULT_WINDOW_MS,
        jobs: int | None = None,
        default_seed: int = 0,
        stage_budget: int = 1000,
        window_deadline_s: float | None = None,
        max_queue_depth: int | None = None,
        admission: str = "block",
        admission_timeout_s: float | None = 30.0,
        default_client: str = "default",
        default_lane: str = "batch",
        max_interactive_staleness: int = 1,
        max_inflight_windows: int = 1,
        window_log_limit: int = DEFAULT_WINDOW_LOG_LIMIT,
        breaker: OracleCircuitBreaker | None = None,
    ) -> None:
        if max_window_queries <= 0:
            raise ValueError(
                f"max_window_queries must be positive, got {max_window_queries}"
            )
        if max_window_ms <= 0:
            raise ValueError(f"max_window_ms must be positive, got {max_window_ms}")
        if window_deadline_s is not None and window_deadline_s <= 0:
            raise ValueError(
                f"window_deadline_s must be positive or None, got {window_deadline_s}"
            )
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ValueError(
                f"max_queue_depth must be positive or None, got {max_queue_depth}"
            )
        if admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, got {admission!r}"
            )
        if admission_timeout_s is not None and admission_timeout_s <= 0:
            raise ValueError(
                "admission_timeout_s must be positive or None, "
                f"got {admission_timeout_s}"
            )
        if default_lane not in LANES:
            raise ValueError(f"default_lane must be one of {LANES}, got {default_lane!r}")
        if max_interactive_staleness < 0:
            raise ValueError(
                "max_interactive_staleness must be non-negative, "
                f"got {max_interactive_staleness}"
            )
        if max_inflight_windows <= 0:
            raise ValueError(
                f"max_inflight_windows must be positive, got {max_inflight_windows}"
            )
        if window_log_limit <= 0:
            raise ValueError(
                f"window_log_limit must be positive, got {window_log_limit}"
            )
        resolve_n_jobs(jobs)  # validate eagerly, before the thread starts
        self.engine = engine
        self.max_window_queries = max_window_queries
        self.max_window_ms = max_window_ms
        self.window_deadline_s = window_deadline_s
        self.max_queue_depth = max_queue_depth
        self.admission = admission
        self.admission_timeout_s = admission_timeout_s
        self.default_client = default_client
        self.default_lane = default_lane
        self.max_interactive_staleness = max_interactive_staleness
        self.max_inflight_windows = max_inflight_windows
        self.window_log_limit = window_log_limit
        self._breaker = breaker
        self._jobs = jobs
        self._default_seed = default_seed
        self._stage_budget = stage_budget
        self._arrival = threading.Condition()
        self._pending: list[_Submission] = []
        #: token -> the window's submissions; populated from formation
        #: until the dispatch completes, so the scheduler-crash sweep
        #: can fail exactly the in-flight tickets.
        self._inflight: dict[int, list[_Submission]] = {}
        #: token -> coarse (table, seed) keys of windows currently
        #: executing on worker threads (concurrent-window mode only).
        self._running: dict[int, set] = {}
        self._window_token = 0
        self._closed = False
        self._scheduler_error: BaseException | None = None
        self._submitted = 0
        self._windows: deque[dict] = deque(maxlen=window_log_limit)
        self._windows_total = 0
        self._window_seq = 0
        self._batch_windows_stale = 0
        self._blocked_seconds = 0.0
        self._counters = {
            "admitted": 0,
            "rejected": 0,
            "shed": 0,
            "cancelled": 0,
        }
        self._totals = {
            "windows": 0,
            "queries_served": 0,
            "queries_folded": 0,
            "late_folded": 0,
            "window_errors": 0,
            "recovered_groups": 0,
        }
        self._lane_latency = {
            lane: deque(maxlen=LANE_LATENCY_SAMPLES) for lane in LANES
        }
        self._lane_stats = {lane: {"served": 0, "errors": 0} for lane in LANES}
        self._thread = threading.Thread(
            target=self._scheduler, name="supg-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- client API ------------------------------------------------------------

    def submit(
        self,
        sql: str,
        seed: int | None = None,
        method: str | None = None,
        stage_budget: int | None = None,
        client_id: str | None = None,
        lane: str | None = None,
        admission_timeout: float | None = None,
        **selector_kwargs,
    ) -> SubmitTicket:
        """Enqueue one statement; returns with a ticket once admitted.

        The statement is parsed synchronously, so syntax errors raise
        here (in the submitting client) rather than poisoning a window.
        Execution errors — unknown table, budget exhaustion — surface
        through :meth:`SubmitTicket.result`.

        Args:
            sql: one SUPG dialect statement (trailing ``;`` and ``--``
                comments allowed).
            seed: per-query seed (defaults to the service's
                ``default_seed``).  Queries submitted with the same
                seed, dataset, and sampling design fold into one
                oracle draw.
            method: selector registry name override.
            stage_budget: joint-query stage budget override.
            client_id: fairness identity; defaults to the service's
                ``default_client``.
            lane: ``"interactive"`` or ``"batch"``; defaults to the
                service's ``default_lane``.
            admission_timeout: per-call override of
                ``admission_timeout_s`` for ``"block"`` admission.
            **selector_kwargs: forwarded to the selector constructor.

        Raises:
            repro.query.parser.QuerySyntaxError: malformed statement.
            AdmissionRejected: the queue is full (``"reject"`` mode, a
                ``"block"`` deadline expiring, or nothing sheddable).
            RuntimeError: the service has been closed, or its scheduler
                thread has died.
        """
        parsed = parse_query(sql)
        lane = self.default_lane if lane is None else lane
        if lane not in LANES:
            raise ValueError(f"lane must be one of {LANES}, got {lane!r}")
        client = self.default_client if client_id is None else str(client_id)
        submission = _Submission(
            parsed=parsed,
            seed=self._default_seed if seed is None else seed,
            method=method,
            stage_budget=self._stage_budget if stage_budget is None else stage_budget,
            selector_kwargs=dict(selector_kwargs),
            ticket=SubmitTicket(0, sql, client_id=client, lane=lane),
            client_id=client,
            lane=lane,
        )
        timeout = (
            self.admission_timeout_s if admission_timeout is None else admission_timeout
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._arrival:
            self._check_open()
            while (
                self.max_queue_depth is not None
                and len(self._pending) >= self.max_queue_depth
            ):
                if self.admission == "reject":
                    self._counters["rejected"] += 1
                    raise AdmissionRejected(
                        f"admission queue full ({len(self._pending)} pending, "
                        f"cap {self.max_queue_depth}); retry in "
                        f"{self._retry_hint():.3f}s",
                        queue_depth=len(self._pending),
                        retry_after_hint=self._retry_hint(),
                    )
                if self.admission == "shed_oldest":
                    if self._shed_oldest():
                        continue  # a slot opened; re-check the cap
                    self._counters["rejected"] += 1
                    raise AdmissionRejected(
                        f"admission queue full ({len(self._pending)} pending) "
                        "and nothing sheddable (all interactive)",
                        queue_depth=len(self._pending),
                        retry_after_hint=self._retry_hint(),
                    )
                # "block": wait for the scheduler to drain a window.
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._counters["rejected"] += 1
                    raise AdmissionRejected(
                        f"admission queue still full after blocking {timeout}s "
                        f"({len(self._pending)} pending, cap {self.max_queue_depth})",
                        queue_depth=len(self._pending),
                        retry_after_hint=self._retry_hint(),
                    )
                waited_from = time.monotonic()
                self._arrival.wait(remaining)
                self._blocked_seconds += time.monotonic() - waited_from
                self._check_open()
            submission.ticket.number = self._submitted
            self._submitted += 1
            self._counters["admitted"] += 1
            self._pending.append(submission)
            submission.ticket._cancel_hook = lambda: self._on_cancel(submission)
            self._arrival.notify_all()
        return submission.ticket

    def _check_open(self) -> None:
        """Raise (under the arrival lock) if submissions are impossible."""
        if self._scheduler_error is not None:
            raise RuntimeError(
                "cannot submit: the SupgService scheduler thread has died"
            ) from self._scheduler_error
        if self._closed:
            raise RuntimeError("cannot submit to a closed SupgService")

    def _retry_hint(self) -> float:
        """Suggested client backoff: roughly one plan window."""
        return max(0.001, self.max_window_ms / 1000.0)

    def _shed_oldest(self) -> bool:
        """Fail the oldest queued batch-lane ticket; True if one shed.

        Interactive tickets are never shed — they are the priority
        lane — so a queue full of interactive work reports back
        pressure via :class:`AdmissionRejected` instead.
        """
        victim = next(
            (
                s
                for s in self._pending
                if s.lane != "interactive" and s.ticket.state != "cancelled"
            ),
            None,
        )
        if victim is None:
            return False
        self._pending.remove(victim)
        self._counters["shed"] += 1
        victim.ticket._finish(
            error=QueryShedError(
                f"query #{victim.ticket.number} shed under overload: admission "
                f"queue at cap {self.max_queue_depth}; resubmit when load drops",
                number=victim.ticket.number,
                phase="admission",
            )
        )
        return True

    def _on_cancel(self, submission: _Submission) -> None:
        """Cancel hook: drop a cancelled submission from the queue."""
        with self._arrival:
            try:
                self._pending.remove(submission)
            except ValueError:
                return  # already dispatched (or shed); nothing to count here
            self._counters["cancelled"] += 1
            self._arrival.notify_all()

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the scheduler.  Idempotent.

        Args:
            drain: run the remaining queued arrivals in final windows
                (the default).  ``False`` fails every queued — not yet
                executing — submission immediately with a
                :class:`QueryError` instead of running it.
            timeout: bound the drain in seconds.  If the scheduler has
                not finished by then, every still-unresolved ticket is
                failed with a :class:`QueryError` so no client blocks
                on a shutdown that cannot complete; the scheduler
                thread (a daemon) is left to die with the process.
        """
        with self._arrival:
            self._closed = True
            dropped = [] if drain else list(self._pending)
            if not drain:
                self._pending.clear()
            self._arrival.notify_all()
        for submission in dropped:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} dropped: service closed "
                    "with drain=False",
                    number=submission.ticket.number,
                    phase="shutdown",
                )
            )
        self._thread.join(timeout)
        if not self._thread.is_alive():
            # No window can be in flight anymore: release the engine's
            # shared-array plane so a stopped service leaves no shm
            # segments or spill files behind.  (The engine stays
            # usable — a later parallel batch rebuilds the plane.)
            self.engine.release_plane()
            return
        with self._arrival:
            stuck = [s for subs in self._inflight.values() for s in subs]
            stuck.extend(self._pending)
            self._pending.clear()
        for submission in stuck:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} aborted: close() drain "
                    f"timed out after {timeout}s",
                    number=submission.ticket.number,
                    phase="shutdown",
                )
            )

    def __enter__(self) -> "SupgService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def window_log(self) -> tuple[dict, ...]:
        """Per-window statistics, oldest retained first (ring buffer).

        Each record maps ``index`` (monotonic window number), ``lane``,
        ``queries`` (statements served), ``errors`` (compile failures
        plus failed executions), ``distinct_draws``, ``queries_folded``
        (statements beyond the first of each group), ``late_folded``
        (arrivals absorbed after the window closed), ``warm_draws``
        (groups already in the store before the window pre-drew),
        ``labels_drawn`` / ``labels_saved`` (store-counter deltas),
        ``bytes_shipped`` / ``bytes_shm`` (result bytes that rode the
        worker pipe vs the shared-memory plane), ``recovered_groups``
        (execution groups re-run sequentially after a fork worker
        died), ``window_seconds``, and ``closed_by`` (``"count"`` /
        ``"timeout"`` / ``"drain"``).  A window abandoned at its
        deadline additionally carries ``deadline_expired=True``; a
        window failed fast by the circuit breaker carries
        ``breaker_open=True``.  Only the newest ``window_log_limit``
        records are retained; the cumulative counters in
        :meth:`session_stats` keep counting past the buffer.
        """
        with self._arrival:
            return tuple(dict(record) for record in self._windows)

    def session_stats(self) -> Mapping[str, int]:
        """Engine store counters plus the service's cumulative accounting.

        Window aggregates (``windows``, ``queries_served``, …) are
        cumulative counters, not sums over :attr:`window_log` — they
        stay exact after the ring buffer starts dropping old records.
        Admission accounting: ``admitted`` / ``rejected`` / ``shed`` /
        ``cancelled`` / ``blocked_ms``.
        """
        stats = dict(self.engine.session_stats())
        with self._arrival:
            stats.update(self._totals)
            stats.update(self._counters)
            stats["blocked_ms"] = int(self._blocked_seconds * 1000.0)
        if self._breaker is not None:
            stats["breaker_fast_failures"] = self._breaker.fast_failures
            stats["breaker_trips"] = self._breaker.tripped_total
        return stats

    def health(self) -> Mapping[str, object]:
        """Live operational snapshot (what ``repro serve`` exposes).

        Reports queue depth, inflight windows, cumulative admission
        counters, circuit-breaker state, and per-lane pending/served
        counts with p50/p99 latency in milliseconds (over the last
        ``LANE_LATENCY_SAMPLES`` completions per lane).
        """
        with self._arrival:
            lanes: dict[str, dict] = {}
            for lane in LANES:
                samples = np.asarray(self._lane_latency[lane], dtype=float)
                entry: dict[str, object] = {
                    "pending": sum(1 for s in self._pending if s.lane == lane),
                    "served": self._lane_stats[lane]["served"],
                    "errors": self._lane_stats[lane]["errors"],
                    "p50_ms": (
                        float(np.percentile(samples, 50) * 1000.0)
                        if samples.size
                        else None
                    ),
                    "p99_ms": (
                        float(np.percentile(samples, 99) * 1000.0)
                        if samples.size
                        else None
                    ),
                }
                lanes[lane] = entry
            snapshot: dict[str, object] = {
                "queue_depth": len(self._pending),
                "max_queue_depth": self.max_queue_depth,
                "admission": self.admission,
                "inflight_windows": len(self._inflight),
                "max_inflight_windows": self.max_inflight_windows,
                "windows_total": self._windows_total,
                "admitted": self._counters["admitted"],
                "rejected": self._counters["rejected"],
                "shed": self._counters["shed"],
                "cancelled": self._counters["cancelled"],
                "blocked_ms": int(self._blocked_seconds * 1000.0),
                "lanes": lanes,
            }
        snapshot["breaker"] = (
            self._breaker.snapshot()
            if self._breaker is not None
            else {"state": "disabled"}
        )
        return snapshot

    # -- scheduler -------------------------------------------------------------

    def _scheduler(self) -> None:
        """Thread body: the window loop inside a last-resort guard.

        The guard is the no-hung-ticket backstop: if the loop itself
        dies (a bug, ``MemoryError``, interpreter shutdown), every
        queued and in-flight ticket is failed with the exception —
        otherwise each would block its client's ``result()`` forever —
        and later ``submit()`` calls fail fast.
        """
        try:
            self._scheduler_loop()
        except BaseException as exc:  # noqa: B036 - deliberate last resort
            self._fail_all_outstanding(exc)

    def _fail_all_outstanding(self, exc: BaseException) -> None:
        with self._arrival:
            self._scheduler_error = exc
            self._closed = True
            stuck = [s for subs in self._inflight.values() for s in subs]
            stuck.extend(self._pending)
            self._pending.clear()
            self._inflight = {}
            self._running = {}
            self._arrival.notify_all()
        for submission in stuck:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} aborted: the service "
                    f"scheduler thread crashed: {exc}",
                    number=submission.ticket.number,
                    phase="scheduler",
                    cause=exc,
                )
            )

    def _scheduler_loop(self) -> None:
        """Collect arrivals into windows; runs until closed and drained."""
        while True:
            with self._arrival:
                while not self._pending and not self._closed:
                    self._arrival.wait()
                if not self._pending and self._closed:
                    break
                closed_by = "drain" if self._closed else "timeout"
                deadline = self._pending[0].arrived + self.max_window_ms / 1000.0
                while not self._closed and len(self._pending) < self.max_window_queries:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrival.wait(timeout=remaining)
                if len(self._pending) >= self.max_window_queries:
                    closed_by = "count"
                elif self._closed:
                    closed_by = "drain"
                window = self._take_window()
                token = None
                if window:
                    token = self._window_token
                    self._window_token += 1
                    self._inflight[token] = list(window)
                # Queue space was freed (taken or purged submissions):
                # wake blocked admission waiters.
                self._arrival.notify_all()
            if not window:
                # close(drain=False) emptied the queue while we waited,
                # or everything left was cancelled; nothing to execute.
                continue
            if self.max_inflight_windows <= 1:
                try:
                    self._dispatch_window(window, closed_by)
                except Exception as exc:
                    # A window must never take the scheduler down with
                    # it: fail the window's tickets and keep serving — a
                    # hung submit()/result() on every later client is
                    # strictly worse than one failed window.
                    for submission in window:
                        submission.ticket._finish(error=exc)
                # Deliberately NOT a finally: a BaseException escaping
                # the dispatch must leave _inflight populated so the
                # scheduler crash guard can fail exactly these tickets.
                with self._arrival:
                    self._inflight.pop(token, None)
                    self._arrival.notify_all()
            else:
                self._launch_concurrent(window, closed_by, token)
        self._await_running_windows()

    def _take_window(self) -> list[_Submission]:
        """Select the next window's members (call under ``_arrival``).

        Purges cancelled tickets, picks the window's lane (batch vs
        interactive, honoring the bounded-staleness counter), and fills
        the window by equal-weight round-robin across ``client_id`` so
        a flooding client cannot push other clients' queries out of the
        next window.
        """
        # Purge cancels that raced past the eager removal hook.
        for submission in [
            s for s in self._pending if s.ticket.state == "cancelled"
        ]:
            self._pending.remove(submission)
            self._counters["cancelled"] += 1
        interactive = [s for s in self._pending if s.lane == "interactive"]
        batch = [s for s in self._pending if s.lane != "interactive"]
        if not self._pending:
            return []
        if interactive and not batch:
            lane = "interactive"
        elif batch and not interactive:
            lane = "batch"
        elif (
            self._batch_windows_stale >= self.max_interactive_staleness
            or self._pending[0].lane == "interactive"
        ):
            lane = "interactive"
        else:
            lane = "batch"
        if lane == "interactive":
            self._batch_windows_stale = 0
            candidates = interactive
        else:
            if interactive:
                self._batch_windows_stale += 1
            candidates = batch
        chosen = self._round_robin(candidates, self.max_window_queries)
        window: list[_Submission] = []
        for submission in chosen:
            self._pending.remove(submission)
            if submission.ticket._mark_dispatched():
                window.append(submission)
            else:
                self._counters["cancelled"] += 1
        return window

    @staticmethod
    def _round_robin(candidates: list[_Submission], limit: int) -> list[_Submission]:
        """Equal-weight round-robin across clients, FIFO within each.

        Clients are cycled in order of their oldest pending arrival,
        taking one statement per client per cycle until the window is
        full — the fairness bound: with C active clients, any client's
        oldest statement is at worst in position C of the window.
        """
        queues: "OrderedDict[str, list[_Submission]]" = OrderedDict()
        for submission in candidates:
            queues.setdefault(submission.client_id, []).append(submission)
        chosen: list[_Submission] = []
        while queues and len(chosen) < limit:
            for client in list(queues):
                queue = queues[client]
                chosen.append(queue.pop(0))
                if not queue:
                    del queues[client]
                if len(chosen) >= limit:
                    break
        return chosen

    @staticmethod
    def _coarse_key(submission: _Submission) -> tuple:
        """Conservative disjointness key for concurrent windows.

        Two windows may overlap in time only when their ``(table,
        seed)`` sets are disjoint — a superset of sharing a real
        ``(fingerprint × design × seed)`` group, computable without
        compiling on the scheduler thread.  (Correctness never depends
        on this — the store serializes draws — it keeps fold accounting
        and label savings attributed to single windows.)
        """
        seed = submission.seed
        return (submission.parsed.table, seed if isinstance(seed, int) else None)

    def _launch_concurrent(
        self, window: list[_Submission], closed_by: str, token: int
    ) -> None:
        """Run one window on a worker thread, capped and disjoint."""
        keys = {self._coarse_key(s) for s in window}
        with self._arrival:
            while (
                len(self._running) >= self.max_inflight_windows
                or any(keys & running for running in self._running.values())
            ):
                self._arrival.wait(timeout=0.5)
            self._running[token] = keys

        def run() -> None:
            try:
                self._dispatch_window(window, closed_by)
            except Exception as exc:
                for submission in window:
                    submission.ticket._finish(error=exc)
            except BaseException as exc:
                # A BaseException on a window thread is not a scheduler
                # death: fail this window's tickets and let the service
                # keep running.
                for submission in window:
                    submission.ticket._finish(
                        error=QueryError(
                            f"query #{submission.ticket.number} aborted: window "
                            f"thread crashed: {exc}",
                            number=submission.ticket.number,
                            phase="scheduler",
                            cause=exc if isinstance(exc, Exception) else None,
                        )
                    )
            finally:
                with self._arrival:
                    self._running.pop(token, None)
                    self._inflight.pop(token, None)
                    self._arrival.notify_all()

        threading.Thread(target=run, name="supg-window-runner", daemon=True).start()

    def _await_running_windows(self) -> None:
        """Drain barrier: wait for concurrent window threads to finish."""
        with self._arrival:
            while self._running:
                self._arrival.wait(timeout=1.0)

    def _dispatch_window(self, window: list[_Submission], closed_by: str) -> None:
        """Run one window, under the service's deadline when one is set.

        The deadline path runs the window on a disposable daemon thread
        and abandons it on overrun: the thread cannot be killed, but
        its later attempts to finish tickets or append a window record
        are no-ops (idempotent tickets, the ``abandoned`` flag), so the
        scheduler safely moves on to the next window.
        """
        if self.window_deadline_s is None:
            self._execute_window(window, closed_by)
            return
        abandoned = threading.Event()

        def run() -> None:
            try:
                self._execute_window(window, closed_by, abandoned=abandoned)
            except Exception as exc:
                for submission in window:
                    submission.ticket._finish(error=exc)

        worker = threading.Thread(target=run, name="supg-window", daemon=True)
        worker.start()
        worker.join(self.window_deadline_s)
        if not worker.is_alive():
            return
        with self._arrival:
            abandoned.set()
            unfinished = [s for s in window if not s.ticket.done()]
            window_index = self._window_seq
            self._window_seq += 1
            self._append_record_locked(
                {
                    "index": window_index,
                    "lane": window[0].lane if window else self.default_lane,
                    "queries": len(window),
                    "errors": len(unfinished),
                    "distinct_draws": 0,
                    "queries_folded": 0,
                    "late_folded": 0,
                    "warm_draws": 0,
                    "labels_drawn": 0,
                    "labels_saved": 0,
                    "recovered_groups": 0,
                    "window_seconds": self.window_deadline_s,
                    "closed_by": closed_by,
                    "deadline_expired": True,
                }
            )
        for submission in unfinished:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} aborted: window "
                    f"{window_index} exceeded its deadline of "
                    f"{self.window_deadline_s}s",
                    number=submission.ticket.number,
                    window=window_index,
                    phase="deadline",
                ),
                window=window_index,
            )

    # -- window execution ------------------------------------------------------

    def _append_record_locked(self, record: dict) -> None:
        """Append one window record + bump the cumulative counters.

        Caller must hold ``_arrival``.  The record lands in the ring
        buffer (old records fall off); the totals are monotonic.
        """
        self._windows.append(record)
        self._windows_total += 1
        totals = self._totals
        totals["windows"] += 1
        totals["queries_served"] += record.get("queries", 0)
        totals["queries_folded"] += record.get("queries_folded", 0)
        totals["late_folded"] += record.get("late_folded", 0)
        totals["window_errors"] += record.get("errors", 0)
        totals["recovered_groups"] += record.get("recovered_groups", 0)

    def _finish_submission(
        self,
        submission: _Submission,
        result: QueryExecution | None = None,
        error: BaseException | None = None,
        window: int | None = None,
    ) -> bool:
        """Finish a ticket and record its lane latency (first win only)."""
        finished = submission.ticket._finish(result=result, error=error, window=window)
        if not finished:
            return False
        lane = submission.lane if submission.lane in self._lane_latency else "batch"
        latency = time.monotonic() - submission.arrived
        with self._arrival:
            self._lane_latency[lane].append(latency)
            self._lane_stats[lane]["served"] += 1
            if error is not None:
                self._lane_stats[lane]["errors"] += 1
        return True

    def _compile_submission(self, submission: _Submission, index: int):
        return self.engine._compile(
            index,
            submission.parsed,
            submission.seed,
            submission.method,
            submission.stage_budget,
            submission.selector_kwargs,
        )

    def _planned_execution(self, job):
        """The planner's view of one compiled query, at its real index.

        Delegates to the engine's own plan builder so the service's
        fold decisions can never diverge from how ``execute_many``
        would group the same statement (joint queries, oracle UDFs,
        generator seeds — one source of truth).
        """
        planned = self.engine._plan_compiled([job]).executions[0]
        return replace(planned, index=job.index)

    def _fold_late_arrivals(self, compiled, submissions, plan) -> int:
        """Absorb queued arrivals whose group this window already pre-drew.

        Runs between prewarm and execution: any pending submission
        keyed to one of the window's (now warm) groups joins the
        window — its draw is already paid for, so running it now saves
        a whole window of latency and keeps the fold accounting where
        the labels were actually shared.  Arrivals that would need a
        *new* draw stay queued for the next window.
        """
        # Snapshot under the lock, compile outside it: compilation can
        # be slow (first-use proxy-UDF derivation scores the whole
        # dataset) and must not stall concurrent submit() calls.  With
        # concurrent windows, another window may fold or take a
        # snapshotted submission first, so each fold re-checks and
        # *claims* its submission under the lock before committing.
        with self._arrival:
            snapshot = list(self._pending)
        folded = 0
        for submission in snapshot:
            try:
                job = self._compile_submission(submission, len(compiled))
            except Exception:
                continue  # stays queued; its own window surfaces the error
            planned = self._planned_execution(job)
            if not plan.covers(planned.key):
                continue
            with self._arrival:
                if submission not in self._pending:
                    continue  # another window claimed it meanwhile
                self._pending.remove(submission)
                if not submission.ticket._mark_dispatched():
                    self._counters["cancelled"] += 1
                    continue
                self._arrival.notify_all()  # queue space freed
            plan.fold(planned, dataset=job.dataset)
            compiled.append(job)
            submissions.append(submission)
            submission.ticket.state = "folded"
            folded += 1
        return folded

    def _execute_window(
        self,
        window: list[_Submission],
        closed_by: str,
        abandoned: threading.Event | None = None,
    ) -> None:
        start = time.perf_counter()
        with self._arrival:
            window_index = self._window_seq
            self._window_seq += 1
        lane = window[0].lane if window else self.default_lane
        compiled = []
        submissions: list[_Submission] = []
        errors = 0
        for submission in window:
            try:
                job = self._compile_submission(submission, len(compiled))
            except Exception as exc:
                # Compile errors (unknown table, bad method name) stay
                # raw: they are the same exceptions engine.execute()
                # raises, and carry no window context worth adding.
                self._finish_submission(submission, error=exc, window=window_index)
                errors += 1
                continue
            compiled.append(job)
            submissions.append(submission)
            submission.ticket.state = "executing"

        store = self.engine.context.store
        breaker = self._breaker

        # Circuit breaker gate: while open, fail the window fast with a
        # typed error instead of letting every ticket burn its full
        # oracle retry budget against a dead dependency.
        if compiled and breaker is not None:
            probing = False
            try:
                probing = breaker.check()
            except CircuitOpenError as exc:
                for submission in submissions:
                    self._finish_submission(
                        submission,
                        error=QueryError.wrap(
                            exc,
                            number=submission.ticket.number,
                            window=window_index,
                            phase="breaker",
                        ),
                        window=window_index,
                    )
                record = {
                    "index": window_index,
                    "lane": lane,
                    "queries": len(window),
                    "errors": errors + len(submissions),
                    "distinct_draws": 0,
                    "queries_folded": 0,
                    "late_folded": 0,
                    "warm_draws": 0,
                    "labels_drawn": 0,
                    "labels_saved": 0,
                    "bytes_shipped": 0,
                    "bytes_shm": 0,
                    "recovered_groups": 0,
                    "window_seconds": time.perf_counter() - start,
                    "closed_by": closed_by,
                    "breaker_open": True,
                }
                with self._arrival:
                    if abandoned is None or not abandoned.is_set():
                        self._append_record_locked(record)
                return
        else:
            probing = False

        plan = None
        warm_draws = 0
        late_folded = 0
        doomed: dict[int, BaseException] = {}
        prewarm_failures: Mapping[tuple, Exception] = {}
        before = store.stats()
        transfer_before = self.engine.transfer_stats()
        window_error: Exception | None = None
        if compiled:
            # Planning and prewarm touch real resources (the oracle,
            # the spill directory); a failure here must fail tickets,
            # not unwind into the scheduler.  Prewarm failures are
            # isolated per group: only the executions that needed the
            # broken draw are doomed, the rest of the window proceeds.
            try:
                plan = self.engine._plan_compiled(compiled)
                warm_draws = sum(
                    1 for tier in plan.warm_keys(store).values() if tier is not None
                )
                prewarm_failures = plan.prewarm(store, isolate_failures=True)
                late_folded = self._fold_late_arrivals(compiled, submissions, plan)
                if prewarm_failures:
                    groups = plan.groups
                    for key, exc in prewarm_failures.items():
                        for index in groups.get(key, ()):
                            doomed[index] = exc
            except Exception as exc:
                window_error = exc

        outcomes = None
        recovered_groups = 0
        if window_error is None and compiled:
            try:
                outcomes, recovered_groups = self._run_window(compiled, plan, doomed)
            except Exception as exc:
                window_error = exc

        execution_errors = 0
        oracle_failures = sum(
            1
            for exc in prewarm_failures.values()
            if isinstance(exc, OracleUnavailableError)
        )
        if window_error is not None:
            for submission in submissions:
                self._finish_submission(
                    submission,
                    error=QueryError.wrap(
                        window_error,
                        number=submission.ticket.number,
                        window=window_index,
                        phase="planning",
                    ),
                    window=window_index,
                )
        elif outcomes is not None:
            for submission, job, (result, error) in zip(submissions, compiled, outcomes):
                if error is not None:
                    execution_errors += 1
                    if (
                        isinstance(error, OracleUnavailableError)
                        and job.index not in doomed
                    ):
                        oracle_failures += 1
                    self._finish_submission(
                        submission,
                        error=QueryError.wrap(
                            error,
                            number=submission.ticket.number,
                            window=window_index,
                            phase="execution",
                        ),
                        window=window_index,
                    )
                    continue
                execution = QueryExecution(
                    parsed=job.parsed,
                    result=result,
                    dataset=job.dataset,
                    method=job.method,
                )
                self._finish_submission(submission, result=execution, window=window_index)

        after = store.stats()
        transfer_after = self.engine.transfer_stats()
        labels_delta = after["labels_drawn"] - before["labels_drawn"]

        # Breaker accounting: only genuine oracle contact moves the
        # state — windows served entirely from warm draws abstain, so a
        # half-open probe stays available for a window that will
        # actually exercise the oracle.
        if compiled and breaker is not None:
            if window_error is not None:
                if isinstance(window_error, OracleUnavailableError):
                    breaker.record_failure()
                else:
                    breaker.abstain()
            elif oracle_failures:
                for _ in range(oracle_failures):
                    breaker.record_failure()
            elif labels_delta > 0:
                breaker.record_success()
            elif probing:
                breaker.abstain()

        grouped = (
            plan.n_executions - len(plan.ungrouped) if plan is not None else 0
        )
        record = {
            "index": window_index,
            "lane": lane,
            "queries": len(compiled),
            "errors": errors
            + (len(submissions) if window_error is not None else execution_errors),
            "distinct_draws": plan.distinct_draws if plan is not None else 0,
            "queries_folded": max(
                0, grouped - (plan.distinct_draws if plan is not None else 0)
            ),
            "late_folded": late_folded,
            "warm_draws": warm_draws,
            "labels_drawn": labels_delta,
            "labels_saved": after["labels_saved"] - before["labels_saved"],
            "bytes_shipped": transfer_after["bytes_shipped"]
            - transfer_before["bytes_shipped"],
            "bytes_shm": transfer_after["bytes_shm"] - transfer_before["bytes_shm"],
            "recovered_groups": recovered_groups,
            "window_seconds": time.perf_counter() - start,
            "closed_by": closed_by,
        }
        with self._arrival:
            if abandoned is not None and abandoned.is_set():
                # The scheduler already gave up on this window, failed
                # its tickets, and logged a deadline record; a late
                # record from the abandoned thread would double-count.
                return
            self._append_record_locked(record)

    def _run_window(
        self, compiled, plan, doomed: Mapping[int, BaseException] | None = None
    ):
        """Execute one window's compiled queries.

        Returns ``(outcomes, recovered_groups)`` where ``outcomes`` has
        one ``(result, error)`` pair per compiled query (exactly one of
        the two is set) and ``recovered_groups`` counts execution
        groups re-run in-thread after a fork worker died.

        The window's worker budget is its fair share of the service's
        ``jobs`` across currently running windows
        (:func:`~repro.core.planning.worker_share`), so concurrent
        windows cannot oversubscribe the host.

        Statement failures are isolated here: the parallel path fans
        whole groups to workers, so when any statement in it raises,
        the window falls back to the sequential per-statement path —
        deterministic, so only the genuinely failing statements' tickets
        fail.  Executions doomed by a failed prewarm draw are not run
        at all (re-attempting a draw that just exhausted its retry
        policy would only hammer the broken oracle); their outcome is
        the prewarm failure.
        """
        doomed = dict(doomed or {})
        if not compiled:
            return [], 0
        with self._arrival:
            concurrent = max(1, len(self._running))
        workers = effective_workers(
            worker_share(self._jobs, concurrent),
            len(compiled),
            "SupgService plan windows",
        )
        if workers > 1 and not doomed:
            try:
                results, recovered = self.engine._run_batches_parallel(
                    compiled, plan, self.engine.context, workers
                )
            except Exception:
                pass  # isolate per statement on the sequential path below
            else:
                return [(result, None) for result in results], len(recovered)
        outcomes: list[tuple] = []
        for job in compiled:
            if job.index in doomed:
                outcomes.append((None, doomed[job.index]))
                continue
            try:
                outcomes.append((job.run(self.engine.context), None))
            except Exception as exc:
                outcomes.append((None, exc))
        return outcomes, 0
