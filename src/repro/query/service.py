"""Continuously running SUPG service: admission queue + plan windows.

:class:`~repro.query.engine.SupgEngine` executes one query (or one
*static* batch) per call.  A production deployment looks different:
queries arrive continuously from concurrent clients, and the paper's
cost model — charge per distinct labeled record — rewards any two
in-flight queries that can legally share an oracle draw.  This module
adds the admission/scheduling layer that makes such sharing happen
without any client coordinating with any other, in the spirit of
GraftDB's dynamic folding of concurrent analytical queries: arrivals
are queued, batched into *plan windows*, and each window is compiled
through the batch planner so queries sharing a
``(dataset fingerprint × SampleDesign × seed)`` group pay for exactly
one oracle draw.

The moving parts:

- :class:`SupgService` — owns a long-lived engine and a scheduler
  thread.  :meth:`~SupgService.submit` enqueues one statement and
  returns immediately with a :class:`SubmitTicket`.
- **Plan windows** — the scheduler closes the open window when it
  holds ``max_window_queries`` statements *or* ``max_window_ms`` has
  elapsed since the window's first arrival, whichever comes first.  A
  closed window is compiled, grouped via
  :func:`~repro.core.planning.plan_executions`, pre-drawn (each
  distinct design exactly once — spilled to disk when the engine has a
  ``store_dir``), then executed, with results routed back to each
  submitter's ticket.
- **Late folding** — after a window's groups are pre-drawn but before
  it executes, arrivals still sitting in the queue whose group is
  already warm are folded into the executing window
  (:meth:`~repro.core.planning.QueryPlan.fold`) instead of waiting for
  the next one: their draw is already paid for, so folding them is
  free labels and lower latency.

Results are bit-identical to a sequential ``engine.execute()`` loop
over the same statements in arrival order: window membership only
decides *when* a query runs and which draws are shared, never what any
query returns.

Failure semantics
-----------------

Sharing a window must never mean sharing a failure.  The isolation
rules, outermost first:

- A statement that fails — selector error, budget exhaustion, a
  permanently unavailable oracle — fails only its *own* ticket, with a
  :class:`QueryError` carrying the window id and the underlying cause.
  Window-mates proceed normally.  (Compile-time errors such as an
  unknown table surface raw, exactly as ``engine.execute()`` would
  raise them.)
- A prewarm draw that fails takes down only the executions that
  needed that draw; the window's other groups still warm and execute.
- A fork worker that dies mid-window is detected
  (``BrokenProcessPool``), and its groups are re-executed sequentially
  in the parent from the already pre-drawn store — bit-identical
  results, logged as ``recovered_groups``.
- With ``window_deadline_s`` set, a window that hangs past the
  deadline is abandoned: its unfinished tickets fail with a
  :class:`QueryError` and the scheduler moves on.
- If the scheduler thread itself dies, every queued and in-flight
  ticket is failed with the scheduler's exception — ``result()``
  never blocks forever on a dead service — and later ``submit()``
  calls raise immediately.
- ``close(drain=True, timeout=...)`` bounds the final drain; whatever
  is still unfinished when the timeout expires fails with a
  :class:`QueryError` instead of blocking shutdown.

Example::

    engine = SupgEngine(store_dir="/var/cache/supg")
    engine.register_table("frames", dataset)
    with SupgService(engine, max_window_queries=8, max_window_ms=25.0) as service:
        tickets = [service.submit(sql) for sql in statements]
        rows = [ticket.result(timeout=60.0) for ticket in tickets]
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

from ..core.planning import effective_workers, resolve_n_jobs
from .engine import QueryExecution, SupgEngine
from .parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ast import ParsedQuery

__all__ = ["SupgService", "SubmitTicket", "QueryError"]

#: Default window-close thresholds: small enough that an interactive
#: client never waits noticeably, large enough that a burst of
#: concurrent submissions lands in one window.
DEFAULT_WINDOW_QUERIES = 8
DEFAULT_WINDOW_MS = 25.0


class QueryError(RuntimeError):
    """One query's failure, isolated to its own ticket.

    Embeds the underlying cause's message (so existing ``match=``
    patterns keep working) and carries structured context for
    programmatic handling.

    Attributes:
        number: the failed query's submission number, when known.
        window: index into :attr:`SupgService.window_log` of the window
            that failed it, when known.
        phase: where the failure happened (``"planning"``,
            ``"execution"``, ``"deadline"``, ``"scheduler"``,
            ``"shutdown"``).
        cause: the underlying exception, when one exists (also chained
            as ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        number: int | None = None,
        window: int | None = None,
        phase: str | None = None,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.number = number
        self.window = window
        self.phase = phase
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause

    @classmethod
    def wrap(
        cls,
        cause: BaseException,
        number: int | None = None,
        window: int | None = None,
        phase: str = "execution",
    ) -> "QueryError":
        """Wrap an underlying failure with query/window context."""
        return cls(
            f"query #{number} failed during {phase} in window {window}: {cause}",
            number=number,
            window=window,
            phase=phase,
            cause=cause,
        )


class SubmitTicket:
    """Future-style handle for one submitted query.

    Returned immediately by :meth:`SupgService.submit`; the result
    arrives when the query's plan window executes.

    Attributes:
        number: the service-wide submission number (arrival order).
        sql: the submitted statement text.
        window: index of the plan window that served the query (into
            :attr:`SupgService.window_log`), set on completion.
        state: where the query is in its lifecycle — ``"queued"``
            (waiting for a window), ``"executing"`` (its window is
            running), ``"folded"`` (absorbed late into an executing
            window), ``"done"``.  Included in timeout errors so a hung
            ``result()`` call says what it was waiting on.
    """

    def __init__(self, number: int, sql: str) -> None:
        self.number = number
        self.sql = sql
        self.window: int | None = None
        self.state = "queued"
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: QueryExecution | None = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        """Whether the query has finished (successfully or not)."""
        return self._event.is_set()

    def _timeout_error(self, timeout: float | None) -> TimeoutError:
        return TimeoutError(
            f"query #{self.number} did not complete within {timeout}s "
            f"(state: {self.state})"
        )

    def result(self, timeout: float | None = None) -> QueryExecution:
        """Block until the window executes; return the execution.

        Raises:
            TimeoutError: the window did not complete within ``timeout``
                seconds; the message includes the ticket's current
                :attr:`state`.
            Exception: whatever the execution itself raised.
        """
        if not self._event.wait(timeout):
            raise self._timeout_error(timeout)
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done; return the error (or ``None`` on success)."""
        if not self._event.wait(timeout):
            raise self._timeout_error(timeout)
        return self._exception

    def _finish(
        self,
        result: QueryExecution | None = None,
        error: BaseException | None = None,
        window: int | None = None,
    ) -> bool:
        """Resolve the ticket; idempotent (the first resolution wins).

        Idempotence is what makes the failure paths composable: a
        deadline abandonment, a scheduler-crash sweep, and the
        (possibly still running) window execution may all try to finish
        the same ticket, and exactly one of them succeeds.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._result = result
            self._exception = error
            self.window = window
            self.state = "done"
            self._event.set()
            return True


@dataclass
class _Submission:
    """One queued query: parsed statement plus its execution parameters."""

    parsed: "ParsedQuery"
    seed: int
    method: str | None
    stage_budget: int
    selector_kwargs: Mapping[str, object]
    ticket: SubmitTicket
    arrived: float = field(default_factory=time.monotonic)


class SupgService:
    """Admission queue over a long-lived engine, batching into plan windows.

    Args:
        engine: the engine to serve (register its tables and UDFs
            before submitting queries).  The service owns the engine's
            execution schedule, not its registrations.
        max_window_queries: close the open window once it holds this
            many statements.
        max_window_ms: close the open window this many milliseconds
            after its first statement arrived, even if not full.
        jobs: worker processes for each window's group fan-out
            (``-1`` = all cores; ``None``/``1`` = in-thread).  On
            platforms without ``fork`` the service warns once and runs
            windows sequentially.
        default_seed: seed for submissions that do not pass one.
        stage_budget: stage-1/2 budget for joint-target queries.
        window_deadline_s: wall-clock budget for one window's
            planning + execution; a window still running past it is
            abandoned (its unfinished tickets fail with
            :class:`QueryError`) and the scheduler moves on.  ``None``
            (the default) never aborts.
    """

    def __init__(
        self,
        engine: SupgEngine,
        max_window_queries: int = DEFAULT_WINDOW_QUERIES,
        max_window_ms: float = DEFAULT_WINDOW_MS,
        jobs: int | None = None,
        default_seed: int = 0,
        stage_budget: int = 1000,
        window_deadline_s: float | None = None,
    ) -> None:
        if max_window_queries <= 0:
            raise ValueError(
                f"max_window_queries must be positive, got {max_window_queries}"
            )
        if max_window_ms <= 0:
            raise ValueError(f"max_window_ms must be positive, got {max_window_ms}")
        if window_deadline_s is not None and window_deadline_s <= 0:
            raise ValueError(
                f"window_deadline_s must be positive or None, got {window_deadline_s}"
            )
        resolve_n_jobs(jobs)  # validate eagerly, before the thread starts
        self.engine = engine
        self.max_window_queries = max_window_queries
        self.max_window_ms = max_window_ms
        self.window_deadline_s = window_deadline_s
        self._jobs = jobs
        self._default_seed = default_seed
        self._stage_budget = stage_budget
        self._arrival = threading.Condition()
        self._pending: list[_Submission] = []
        self._inflight: list[_Submission] = []
        self._closed = False
        self._scheduler_error: BaseException | None = None
        self._submitted = 0
        self._windows: list[dict] = []
        self._thread = threading.Thread(
            target=self._scheduler, name="supg-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- client API ------------------------------------------------------------

    def submit(
        self,
        sql: str,
        seed: int | None = None,
        method: str | None = None,
        stage_budget: int | None = None,
        **selector_kwargs,
    ) -> SubmitTicket:
        """Enqueue one statement; returns immediately with a ticket.

        The statement is parsed synchronously, so syntax errors raise
        here (in the submitting client) rather than poisoning a window.
        Execution errors — unknown table, budget exhaustion — surface
        through :meth:`SubmitTicket.result`.

        Args:
            sql: one SUPG dialect statement (trailing ``;`` and ``--``
                comments allowed).
            seed: per-query seed (defaults to the service's
                ``default_seed``).  Queries submitted with the same
                seed, dataset, and sampling design fold into one
                oracle draw.
            method: selector registry name override.
            stage_budget: joint-query stage budget override.
            **selector_kwargs: forwarded to the selector constructor.

        Raises:
            repro.query.parser.QuerySyntaxError: malformed statement.
            RuntimeError: the service has been closed, or its scheduler
                thread has died.
        """
        parsed = parse_query(sql)
        submission = _Submission(
            parsed=parsed,
            seed=self._default_seed if seed is None else seed,
            method=method,
            stage_budget=self._stage_budget if stage_budget is None else stage_budget,
            selector_kwargs=dict(selector_kwargs),
            ticket=SubmitTicket(0, sql),
        )
        with self._arrival:
            if self._scheduler_error is not None:
                raise RuntimeError(
                    "cannot submit: the SupgService scheduler thread has died"
                ) from self._scheduler_error
            if self._closed:
                raise RuntimeError("cannot submit to a closed SupgService")
            submission.ticket.number = self._submitted
            self._submitted += 1
            self._pending.append(submission)
            self._arrival.notify_all()
        return submission.ticket

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the scheduler.  Idempotent.

        Args:
            drain: run the remaining queued arrivals in final windows
                (the default).  ``False`` fails every queued — not yet
                executing — submission immediately with a
                :class:`QueryError` instead of running it.
            timeout: bound the drain in seconds.  If the scheduler has
                not finished by then, every still-unresolved ticket is
                failed with a :class:`QueryError` so no client blocks
                on a shutdown that cannot complete; the scheduler
                thread (a daemon) is left to die with the process.
        """
        with self._arrival:
            self._closed = True
            dropped = [] if drain else list(self._pending)
            if not drain:
                self._pending.clear()
            self._arrival.notify_all()
        for submission in dropped:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} dropped: service closed "
                    "with drain=False",
                    number=submission.ticket.number,
                    phase="shutdown",
                )
            )
        self._thread.join(timeout)
        if not self._thread.is_alive():
            # No window can be in flight anymore: release the engine's
            # shared-array plane so a stopped service leaves no shm
            # segments or spill files behind.  (The engine stays
            # usable — a later parallel batch rebuilds the plane.)
            self.engine.release_plane()
            return
        with self._arrival:
            stuck = list(self._pending) + list(self._inflight)
            self._pending.clear()
        for submission in stuck:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} aborted: close() drain "
                    f"timed out after {timeout}s",
                    number=submission.ticket.number,
                    phase="shutdown",
                )
            )

    def __enter__(self) -> "SupgService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def window_log(self) -> tuple[dict, ...]:
        """Per-window statistics, in execution order.

        Each record maps ``queries`` (statements served), ``errors``
        (compile failures plus failed executions), ``distinct_draws``,
        ``queries_folded`` (statements beyond the first of each group),
        ``late_folded`` (arrivals absorbed after the window closed),
        ``warm_draws`` (groups already in the store before the window
        pre-drew), ``labels_drawn`` / ``labels_saved`` (store-counter
        deltas), ``bytes_shipped`` / ``bytes_shm`` (result bytes that
        rode the worker pipe vs the shared-memory plane),
        ``recovered_groups`` (execution groups re-run
        sequentially after a fork worker died), ``window_seconds``,
        and ``closed_by`` (``"count"`` / ``"timeout"`` / ``"drain"``).
        A window abandoned at its deadline additionally carries
        ``deadline_expired=True``.
        """
        with self._arrival:
            return tuple(dict(record) for record in self._windows)

    def session_stats(self) -> Mapping[str, int]:
        """Engine store counters plus the service's window accounting."""
        stats = dict(self.engine.session_stats())
        with self._arrival:
            windows = [dict(record) for record in self._windows]
        stats.update(
            windows=len(windows),
            queries_served=sum(w["queries"] for w in windows),
            queries_folded=sum(w["queries_folded"] for w in windows),
            late_folded=sum(w["late_folded"] for w in windows),
            window_errors=sum(w["errors"] for w in windows),
            recovered_groups=sum(w.get("recovered_groups", 0) for w in windows),
        )
        return stats

    # -- scheduler -------------------------------------------------------------

    def _scheduler(self) -> None:
        """Thread body: the window loop inside a last-resort guard.

        The guard is the no-hung-ticket backstop: if the loop itself
        dies (a bug, ``MemoryError``, interpreter shutdown), every
        queued and in-flight ticket is failed with the exception —
        otherwise each would block its client's ``result()`` forever —
        and later ``submit()`` calls fail fast.
        """
        try:
            self._scheduler_loop()
        except BaseException as exc:  # noqa: B036 - deliberate last resort
            self._fail_all_outstanding(exc)

    def _fail_all_outstanding(self, exc: BaseException) -> None:
        with self._arrival:
            self._scheduler_error = exc
            self._closed = True
            stuck = list(self._inflight) + list(self._pending)
            self._pending.clear()
            self._inflight = []
            self._arrival.notify_all()
        for submission in stuck:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} aborted: the service "
                    f"scheduler thread crashed: {exc}",
                    number=submission.ticket.number,
                    phase="scheduler",
                    cause=exc,
                )
            )

    def _scheduler_loop(self) -> None:
        """Collect arrivals into windows; runs until closed and drained."""
        while True:
            with self._arrival:
                while not self._pending and not self._closed:
                    self._arrival.wait()
                if not self._pending and self._closed:
                    return
                closed_by = "drain" if self._closed else "timeout"
                deadline = self._pending[0].arrived + self.max_window_ms / 1000.0
                while not self._closed and len(self._pending) < self.max_window_queries:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrival.wait(timeout=remaining)
                if len(self._pending) >= self.max_window_queries:
                    closed_by = "count"
                elif self._closed:
                    closed_by = "drain"
                window = self._pending[: self.max_window_queries]
                del self._pending[: len(window)]
                self._inflight = list(window)
            if not window:
                # close(drain=False) emptied the queue while we waited
                # for the window to fill; nothing to execute or log.
                continue
            try:
                self._dispatch_window(window, closed_by)
            except Exception as exc:
                # A window must never take the scheduler down with it:
                # fail the window's tickets and keep serving — a hung
                # submit()/result() on every later client is strictly
                # worse than one failed window.
                for submission in window:
                    submission.ticket._finish(error=exc)
            # Deliberately NOT a finally: a BaseException escaping the
            # dispatch must leave _inflight populated so the scheduler
            # crash guard can fail exactly these tickets.
            with self._arrival:
                self._inflight = []

    def _dispatch_window(self, window: list[_Submission], closed_by: str) -> None:
        """Run one window, under the service's deadline when one is set.

        The deadline path runs the window on a disposable daemon thread
        and abandons it on overrun: the thread cannot be killed, but
        its later attempts to finish tickets or append a window record
        are no-ops (idempotent tickets, the ``abandoned`` flag), so the
        scheduler safely moves on to the next window.
        """
        if self.window_deadline_s is None:
            self._execute_window(window, closed_by)
            return
        abandoned = threading.Event()

        def run() -> None:
            try:
                self._execute_window(window, closed_by, abandoned=abandoned)
            except Exception as exc:
                for submission in window:
                    submission.ticket._finish(error=exc)

        worker = threading.Thread(target=run, name="supg-window", daemon=True)
        worker.start()
        worker.join(self.window_deadline_s)
        if not worker.is_alive():
            return
        with self._arrival:
            abandoned.set()
            unfinished = [s for s in window if not s.ticket.done()]
            window_index = len(self._windows)
            self._windows.append(
                {
                    "queries": len(window),
                    "errors": len(unfinished),
                    "distinct_draws": 0,
                    "queries_folded": 0,
                    "late_folded": 0,
                    "warm_draws": 0,
                    "labels_drawn": 0,
                    "labels_saved": 0,
                    "recovered_groups": 0,
                    "window_seconds": self.window_deadline_s,
                    "closed_by": closed_by,
                    "deadline_expired": True,
                }
            )
        for submission in unfinished:
            submission.ticket._finish(
                error=QueryError(
                    f"query #{submission.ticket.number} aborted: window "
                    f"{window_index} exceeded its deadline of "
                    f"{self.window_deadline_s}s",
                    number=submission.ticket.number,
                    window=window_index,
                    phase="deadline",
                ),
                window=window_index,
            )

    # -- window execution ------------------------------------------------------

    def _compile_submission(self, submission: _Submission, index: int):
        return self.engine._compile(
            index,
            submission.parsed,
            submission.seed,
            submission.method,
            submission.stage_budget,
            submission.selector_kwargs,
        )

    def _planned_execution(self, job):
        """The planner's view of one compiled query, at its real index.

        Delegates to the engine's own plan builder so the service's
        fold decisions can never diverge from how ``execute_many``
        would group the same statement (joint queries, oracle UDFs,
        generator seeds — one source of truth).
        """
        planned = self.engine._plan_compiled([job]).executions[0]
        return replace(planned, index=job.index)

    def _fold_late_arrivals(self, compiled, submissions, plan) -> int:
        """Absorb queued arrivals whose group this window already pre-drew.

        Runs between prewarm and execution: any pending submission
        keyed to one of the window's (now warm) groups joins the
        window — its draw is already paid for, so running it now saves
        a whole window of latency and keeps the fold accounting where
        the labels were actually shared.  Arrivals that would need a
        *new* draw stay queued for the next window.
        """
        # Snapshot under the lock, compile outside it: compilation can
        # be slow (first-use proxy-UDF derivation scores the whole
        # dataset) and must not stall concurrent submit() calls.  Only
        # the scheduler thread — this thread — ever removes from the
        # pending queue, so the snapshot stays removable afterwards.
        with self._arrival:
            snapshot = list(self._pending)
        folded: list[_Submission] = []
        for submission in snapshot:
            try:
                job = self._compile_submission(submission, len(compiled))
            except Exception:
                continue  # stays queued; its own window surfaces the error
            planned = self._planned_execution(job)
            if plan.covers(planned.key):
                plan.fold(planned, dataset=job.dataset)
                compiled.append(job)
                submissions.append(submission)
                submission.ticket.state = "folded"
                folded.append(submission)
        if folded:
            with self._arrival:
                for submission in folded:
                    self._pending.remove(submission)
        return len(folded)

    def _execute_window(
        self,
        window: list[_Submission],
        closed_by: str,
        abandoned: threading.Event | None = None,
    ) -> None:
        start = time.perf_counter()
        window_index = len(self._windows)
        compiled = []
        submissions: list[_Submission] = []
        errors = 0
        for submission in window:
            try:
                job = self._compile_submission(submission, len(compiled))
            except Exception as exc:
                # Compile errors (unknown table, bad method name) stay
                # raw: they are the same exceptions engine.execute()
                # raises, and carry no window context worth adding.
                submission.ticket._finish(error=exc, window=window_index)
                errors += 1
                continue
            compiled.append(job)
            submissions.append(submission)
            submission.ticket.state = "executing"

        store = self.engine.context.store
        plan = None
        warm_draws = 0
        late_folded = 0
        doomed: dict[int, BaseException] = {}
        before = store.stats()
        transfer_before = self.engine.transfer_stats()
        window_error: Exception | None = None
        if compiled:
            # Planning and prewarm touch real resources (the oracle,
            # the spill directory); a failure here must fail tickets,
            # not unwind into the scheduler.  Prewarm failures are
            # isolated per group: only the executions that needed the
            # broken draw are doomed, the rest of the window proceeds.
            try:
                plan = self.engine._plan_compiled(compiled)
                warm_draws = sum(
                    1 for tier in plan.warm_keys(store).values() if tier is not None
                )
                prewarm_failures = plan.prewarm(store, isolate_failures=True)
                late_folded = self._fold_late_arrivals(compiled, submissions, plan)
                if prewarm_failures:
                    groups = plan.groups
                    for key, exc in prewarm_failures.items():
                        for index in groups.get(key, ()):
                            doomed[index] = exc
            except Exception as exc:
                window_error = exc

        outcomes = None
        recovered_groups = 0
        if window_error is None and compiled:
            try:
                outcomes, recovered_groups = self._run_window(compiled, plan, doomed)
            except Exception as exc:
                window_error = exc

        execution_errors = 0
        if window_error is not None:
            for submission in submissions:
                submission.ticket._finish(
                    error=QueryError.wrap(
                        window_error,
                        number=submission.ticket.number,
                        window=window_index,
                        phase="planning",
                    ),
                    window=window_index,
                )
        elif outcomes is not None:
            for submission, job, (result, error) in zip(submissions, compiled, outcomes):
                if error is not None:
                    execution_errors += 1
                    submission.ticket._finish(
                        error=QueryError.wrap(
                            error,
                            number=submission.ticket.number,
                            window=window_index,
                            phase="execution",
                        ),
                        window=window_index,
                    )
                    continue
                execution = QueryExecution(
                    parsed=job.parsed,
                    result=result,
                    dataset=job.dataset,
                    method=job.method,
                )
                submission.ticket._finish(result=execution, window=window_index)

        after = store.stats()
        transfer_after = self.engine.transfer_stats()
        grouped = (
            plan.n_executions - len(plan.ungrouped) if plan is not None else 0
        )
        record = {
            "queries": len(compiled),
            "errors": errors
            + (len(submissions) if window_error is not None else execution_errors),
            "distinct_draws": plan.distinct_draws if plan is not None else 0,
            "queries_folded": max(
                0, grouped - (plan.distinct_draws if plan is not None else 0)
            ),
            "late_folded": late_folded,
            "warm_draws": warm_draws,
            "labels_drawn": after["labels_drawn"] - before["labels_drawn"],
            "labels_saved": after["labels_saved"] - before["labels_saved"],
            "bytes_shipped": transfer_after["bytes_shipped"]
            - transfer_before["bytes_shipped"],
            "bytes_shm": transfer_after["bytes_shm"] - transfer_before["bytes_shm"],
            "recovered_groups": recovered_groups,
            "window_seconds": time.perf_counter() - start,
            "closed_by": closed_by,
        }
        with self._arrival:
            if abandoned is not None and abandoned.is_set():
                # The scheduler already gave up on this window, failed
                # its tickets, and logged a deadline record; a late
                # record from the abandoned thread would double-count.
                return
            self._windows.append(record)

    def _run_window(
        self, compiled, plan, doomed: Mapping[int, BaseException] | None = None
    ):
        """Execute one window's compiled queries.

        Returns ``(outcomes, recovered_groups)`` where ``outcomes`` has
        one ``(result, error)`` pair per compiled query (exactly one of
        the two is set) and ``recovered_groups`` counts execution
        groups re-run in-thread after a fork worker died.

        Statement failures are isolated here: the parallel path fans
        whole groups to workers, so when any statement in it raises,
        the window falls back to the sequential per-statement path —
        deterministic, so only the genuinely failing statements' tickets
        fail.  Executions doomed by a failed prewarm draw are not run
        at all (re-attempting a draw that just exhausted its retry
        policy would only hammer the broken oracle); their outcome is
        the prewarm failure.
        """
        doomed = dict(doomed or {})
        if not compiled:
            return [], 0
        workers = effective_workers(
            self._jobs, len(compiled), "SupgService plan windows"
        )
        if workers > 1 and not doomed:
            try:
                results, recovered = self.engine._run_batches_parallel(
                    compiled, plan, self.engine.context, workers
                )
            except Exception:
                pass  # isolate per statement on the sequential path below
            else:
                return [(result, None) for result in results], len(recovered)
        outcomes: list[tuple] = []
        for job in compiled:
            if job.index in doomed:
                outcomes.append((None, doomed[job.index]))
                continue
            try:
                outcomes.append((job.run(self.engine.context), None))
            except Exception as exc:
                outcomes.append((None, exc))
        return outcomes, 0
