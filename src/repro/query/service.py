"""Continuously running SUPG service: admission queue + plan windows.

:class:`~repro.query.engine.SupgEngine` executes one query (or one
*static* batch) per call.  A production deployment looks different:
queries arrive continuously from concurrent clients, and the paper's
cost model — charge per distinct labeled record — rewards any two
in-flight queries that can legally share an oracle draw.  This module
adds the admission/scheduling layer that makes such sharing happen
without any client coordinating with any other, in the spirit of
GraftDB's dynamic folding of concurrent analytical queries: arrivals
are queued, batched into *plan windows*, and each window is compiled
through the batch planner so queries sharing a
``(dataset fingerprint × SampleDesign × seed)`` group pay for exactly
one oracle draw.

The moving parts:

- :class:`SupgService` — owns a long-lived engine and a scheduler
  thread.  :meth:`~SupgService.submit` enqueues one statement and
  returns immediately with a :class:`SubmitTicket`.
- **Plan windows** — the scheduler closes the open window when it
  holds ``max_window_queries`` statements *or* ``max_window_ms`` has
  elapsed since the window's first arrival, whichever comes first.  A
  closed window is compiled, grouped via
  :func:`~repro.core.planning.plan_executions`, pre-drawn (each
  distinct design exactly once — spilled to disk when the engine has a
  ``store_dir``), then executed, with results routed back to each
  submitter's ticket.
- **Late folding** — after a window's groups are pre-drawn but before
  it executes, arrivals still sitting in the queue whose group is
  already warm are folded into the executing window
  (:meth:`~repro.core.planning.QueryPlan.fold`) instead of waiting for
  the next one: their draw is already paid for, so folding them is
  free labels and lower latency.

Results are bit-identical to a sequential ``engine.execute()`` loop
over the same statements in arrival order: window membership only
decides *when* a query runs and which draws are shared, never what any
query returns.

Example::

    engine = SupgEngine(store_dir="/var/cache/supg")
    engine.register_table("frames", dataset)
    with SupgService(engine, max_window_queries=8, max_window_ms=25.0) as service:
        tickets = [service.submit(sql) for sql in statements]
        rows = [ticket.result(timeout=60.0) for ticket in tickets]
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

from ..core.planning import require_fork_or_warn, resolve_n_jobs
from .engine import QueryExecution, SupgEngine
from .parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ast import ParsedQuery

__all__ = ["SupgService", "SubmitTicket"]

#: Default window-close thresholds: small enough that an interactive
#: client never waits noticeably, large enough that a burst of
#: concurrent submissions lands in one window.
DEFAULT_WINDOW_QUERIES = 8
DEFAULT_WINDOW_MS = 25.0


class SubmitTicket:
    """Future-style handle for one submitted query.

    Returned immediately by :meth:`SupgService.submit`; the result
    arrives when the query's plan window executes.

    Attributes:
        number: the service-wide submission number (arrival order).
        sql: the submitted statement text.
        window: index of the plan window that served the query (into
            :attr:`SupgService.window_log`), set on completion.
    """

    def __init__(self, number: int, sql: str) -> None:
        self.number = number
        self.sql = sql
        self.window: int | None = None
        self._event = threading.Event()
        self._result: QueryExecution | None = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        """Whether the query has finished (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryExecution:
        """Block until the window executes; return the execution.

        Raises:
            TimeoutError: the window did not complete within ``timeout``
                seconds.
            Exception: whatever the execution itself raised.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query #{self.number} did not complete within {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done; return the error (or ``None`` on success)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query #{self.number} did not complete within {timeout}s"
            )
        return self._exception

    def _finish(
        self,
        result: QueryExecution | None = None,
        error: BaseException | None = None,
        window: int | None = None,
    ) -> None:
        self._result = result
        self._exception = error
        self.window = window
        self._event.set()


@dataclass
class _Submission:
    """One queued query: parsed statement plus its execution parameters."""

    parsed: "ParsedQuery"
    seed: int
    method: str | None
    stage_budget: int
    selector_kwargs: Mapping[str, object]
    ticket: SubmitTicket
    arrived: float = field(default_factory=time.monotonic)


class SupgService:
    """Admission queue over a long-lived engine, batching into plan windows.

    Args:
        engine: the engine to serve (register its tables and UDFs
            before submitting queries).  The service owns the engine's
            execution schedule, not its registrations.
        max_window_queries: close the open window once it holds this
            many statements.
        max_window_ms: close the open window this many milliseconds
            after its first statement arrived, even if not full.
        jobs: worker processes for each window's group fan-out
            (``-1`` = all cores; ``None``/``1`` = in-thread).  On
            platforms without ``fork`` the service warns once and runs
            windows sequentially.
        default_seed: seed for submissions that do not pass one.
        stage_budget: stage-1/2 budget for joint-target queries.
    """

    def __init__(
        self,
        engine: SupgEngine,
        max_window_queries: int = DEFAULT_WINDOW_QUERIES,
        max_window_ms: float = DEFAULT_WINDOW_MS,
        jobs: int | None = None,
        default_seed: int = 0,
        stage_budget: int = 1000,
    ) -> None:
        if max_window_queries <= 0:
            raise ValueError(
                f"max_window_queries must be positive, got {max_window_queries}"
            )
        if max_window_ms <= 0:
            raise ValueError(f"max_window_ms must be positive, got {max_window_ms}")
        resolve_n_jobs(jobs)  # validate eagerly, before the thread starts
        self.engine = engine
        self.max_window_queries = max_window_queries
        self.max_window_ms = max_window_ms
        self._jobs = jobs
        self._default_seed = default_seed
        self._stage_budget = stage_budget
        self._arrival = threading.Condition()
        self._pending: list[_Submission] = []
        self._closed = False
        self._submitted = 0
        self._windows: list[dict] = []
        self._thread = threading.Thread(
            target=self._scheduler, name="supg-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- client API ------------------------------------------------------------

    def submit(
        self,
        sql: str,
        seed: int | None = None,
        method: str | None = None,
        stage_budget: int | None = None,
        **selector_kwargs,
    ) -> SubmitTicket:
        """Enqueue one statement; returns immediately with a ticket.

        The statement is parsed synchronously, so syntax errors raise
        here (in the submitting client) rather than poisoning a window.
        Execution errors — unknown table, budget exhaustion — surface
        through :meth:`SubmitTicket.result`.

        Args:
            sql: one SUPG dialect statement (trailing ``;`` and ``--``
                comments allowed).
            seed: per-query seed (defaults to the service's
                ``default_seed``).  Queries submitted with the same
                seed, dataset, and sampling design fold into one
                oracle draw.
            method: selector registry name override.
            stage_budget: joint-query stage budget override.
            **selector_kwargs: forwarded to the selector constructor.

        Raises:
            repro.query.parser.QuerySyntaxError: malformed statement.
            RuntimeError: the service has been closed.
        """
        parsed = parse_query(sql)
        submission = _Submission(
            parsed=parsed,
            seed=self._default_seed if seed is None else seed,
            method=method,
            stage_budget=self._stage_budget if stage_budget is None else stage_budget,
            selector_kwargs=dict(selector_kwargs),
            ticket=SubmitTicket(0, sql),
        )
        with self._arrival:
            if self._closed:
                raise RuntimeError("cannot submit to a closed SupgService")
            submission.ticket.number = self._submitted
            self._submitted += 1
            self._pending.append(submission)
            self._arrival.notify_all()
        return submission.ticket

    def close(self) -> None:
        """Drain the queue (remaining arrivals run in final windows)
        and stop the scheduler.  Idempotent."""
        with self._arrival:
            self._closed = True
            self._arrival.notify_all()
        self._thread.join()

    def __enter__(self) -> "SupgService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def window_log(self) -> tuple[dict, ...]:
        """Per-window statistics, in execution order.

        Each record maps ``queries`` (statements served), ``errors``
        (compile failures), ``distinct_draws``, ``queries_folded``
        (statements beyond the first of each group), ``late_folded``
        (arrivals absorbed after the window closed), ``warm_draws``
        (groups already in the store before the window pre-drew),
        ``labels_drawn`` / ``labels_saved`` (store-counter deltas),
        ``window_seconds``, and ``closed_by`` (``"count"`` /
        ``"timeout"`` / ``"drain"``).
        """
        with self._arrival:
            return tuple(dict(record) for record in self._windows)

    def session_stats(self) -> Mapping[str, int]:
        """Engine store counters plus the service's window accounting."""
        stats = dict(self.engine.session_stats())
        with self._arrival:
            windows = [dict(record) for record in self._windows]
        stats.update(
            windows=len(windows),
            queries_served=sum(w["queries"] for w in windows),
            queries_folded=sum(w["queries_folded"] for w in windows),
            late_folded=sum(w["late_folded"] for w in windows),
            window_errors=sum(w["errors"] for w in windows),
        )
        return stats

    # -- scheduler -------------------------------------------------------------

    def _scheduler(self) -> None:
        """Collect arrivals into windows; runs until closed and drained."""
        while True:
            with self._arrival:
                while not self._pending and not self._closed:
                    self._arrival.wait()
                if not self._pending and self._closed:
                    return
                closed_by = "drain" if self._closed else "timeout"
                deadline = self._pending[0].arrived + self.max_window_ms / 1000.0
                while not self._closed and len(self._pending) < self.max_window_queries:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrival.wait(timeout=remaining)
                if len(self._pending) >= self.max_window_queries:
                    closed_by = "count"
                elif self._closed:
                    closed_by = "drain"
                window = self._pending[: self.max_window_queries]
                del self._pending[: len(window)]
            try:
                self._execute_window(window, closed_by)
            except Exception as exc:
                # A window must never take the scheduler down with it:
                # fail the window's tickets and keep serving — a hung
                # submit()/result() on every later client is strictly
                # worse than one failed window.
                for submission in window:
                    if not submission.ticket.done():
                        submission.ticket._finish(error=exc)

    # -- window execution ------------------------------------------------------

    def _compile_submission(self, submission: _Submission, index: int):
        return self.engine._compile(
            index,
            submission.parsed,
            submission.seed,
            submission.method,
            submission.stage_budget,
            submission.selector_kwargs,
        )

    def _planned_execution(self, job):
        """The planner's view of one compiled query, at its real index.

        Delegates to the engine's own plan builder so the service's
        fold decisions can never diverge from how ``execute_many``
        would group the same statement (joint queries, oracle UDFs,
        generator seeds — one source of truth).
        """
        planned = self.engine._plan_compiled([job]).executions[0]
        return replace(planned, index=job.index)

    def _fold_late_arrivals(self, compiled, submissions, plan) -> int:
        """Absorb queued arrivals whose group this window already pre-drew.

        Runs between prewarm and execution: any pending submission
        keyed to one of the window's (now warm) groups joins the
        window — its draw is already paid for, so running it now saves
        a whole window of latency and keeps the fold accounting where
        the labels were actually shared.  Arrivals that would need a
        *new* draw stay queued for the next window.
        """
        # Snapshot under the lock, compile outside it: compilation can
        # be slow (first-use proxy-UDF derivation scores the whole
        # dataset) and must not stall concurrent submit() calls.  Only
        # the scheduler thread — this thread — ever removes from the
        # pending queue, so the snapshot stays removable afterwards.
        with self._arrival:
            snapshot = list(self._pending)
        folded: list[_Submission] = []
        for submission in snapshot:
            try:
                job = self._compile_submission(submission, len(compiled))
            except Exception:
                continue  # stays queued; its own window surfaces the error
            planned = self._planned_execution(job)
            if plan.covers(planned.key):
                plan.fold(planned, dataset=job.dataset)
                compiled.append(job)
                submissions.append(submission)
                folded.append(submission)
        if folded:
            with self._arrival:
                for submission in folded:
                    self._pending.remove(submission)
        return len(folded)

    def _execute_window(self, window: list[_Submission], closed_by: str) -> None:
        start = time.perf_counter()
        compiled = []
        submissions: list[_Submission] = []
        errors = 0
        for submission in window:
            try:
                job = self._compile_submission(submission, len(compiled))
            except Exception as exc:
                submission.ticket._finish(error=exc, window=len(self._windows))
                errors += 1
                continue
            compiled.append(job)
            submissions.append(submission)

        store = self.engine.context.store
        plan = None
        warm_draws = 0
        late_folded = 0
        before = store.stats()
        window_index = len(self._windows)
        window_error: Exception | None = None
        if compiled:
            # Planning and prewarm touch real resources (the oracle,
            # the spill directory); a failure here must fail this
            # window's tickets, not unwind into the scheduler.
            try:
                plan = self.engine._plan_compiled(compiled)
                warm_draws = sum(
                    1 for tier in plan.warm_keys(store).values() if tier is not None
                )
                plan.prewarm(store)
                late_folded = self._fold_late_arrivals(compiled, submissions, plan)
            except Exception as exc:
                window_error = exc

        if window_error is not None:
            results = None
        else:
            try:
                results = self._run_window(compiled, plan)
            except Exception as exc:
                window_error = exc
                results = None
        if window_error is not None:
            for submission in submissions:
                submission.ticket._finish(error=window_error, window=window_index)
        if results is not None:
            for submission, job, result in zip(submissions, compiled, results):
                execution = QueryExecution(
                    parsed=job.parsed,
                    result=result,
                    dataset=job.dataset,
                    method=job.method,
                )
                submission.ticket._finish(result=execution, window=window_index)

        after = store.stats()
        grouped = (
            plan.n_executions - len(plan.ungrouped) if plan is not None else 0
        )
        record = {
            "queries": len(compiled),
            "errors": errors + (len(submissions) if window_error is not None else 0),
            "distinct_draws": plan.distinct_draws if plan is not None else 0,
            "queries_folded": max(
                0, grouped - (plan.distinct_draws if plan is not None else 0)
            ),
            "late_folded": late_folded,
            "warm_draws": warm_draws,
            "labels_drawn": after["labels_drawn"] - before["labels_drawn"],
            "labels_saved": after["labels_saved"] - before["labels_saved"],
            "window_seconds": time.perf_counter() - start,
            "closed_by": closed_by,
        }
        with self._arrival:
            self._windows.append(record)

    def _run_window(self, compiled, plan):
        if not compiled:
            return []
        workers = min(resolve_n_jobs(self._jobs), len(compiled))
        if workers > 1 and not require_fork_or_warn("SupgService plan windows"):
            workers = 1
        if workers > 1:
            return SupgEngine._run_batches_parallel(
                compiled, plan, self.engine.context, workers
            )
        return [job.run(self.engine.context) for job in compiled]
