"""SQL-like query layer for the SUPG dialect (Figures 3 and 14)."""

from __future__ import annotations

from .ast import ParsedQuery, QueryKind, UdfCall
from .engine import QueryExecution, SupgEngine
from .parser import QuerySyntaxError, parse_query, parse_script, split_script
from .service import (
    AdmissionRejected,
    QueryError,
    QueryShedError,
    SubmitTicket,
    SupgService,
)

__all__ = [
    "ParsedQuery",
    "QueryKind",
    "UdfCall",
    "parse_query",
    "parse_script",
    "split_script",
    "QuerySyntaxError",
    "SupgEngine",
    "QueryExecution",
    "SupgService",
    "SubmitTicket",
    "QueryError",
    "QueryShedError",
    "AdmissionRejected",
]
