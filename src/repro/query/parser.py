"""Parser for the SUPG query dialect (Figures 3 and 14 of the paper).

A small hand-written tokenizer and recursive-descent parser.  The
dialect is deliberately tiny — one table, one predicate, one proxy, and
a fixed clause order — so the parser favors clear error messages over
grammar generality.  Keywords are case-insensitive; identifiers and
literals preserve case.

Input may hold several statements separated by ``;`` (a batch for
:meth:`repro.query.engine.SupgEngine.execute_many`):
:func:`parse_script` returns them all, while :func:`parse_query`
accepts exactly one statement (with an optional trailing semicolon).
``--`` starts a line comment in either form; blank statements (from
stray or trailing semicolons) are skipped rather than parsed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .ast import ParsedQuery, UdfCall

__all__ = ["parse_query", "parse_script", "split_script", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """Raised when a query does not match the SUPG dialect."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?%?)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<symbol>[*(),=;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise QuerySyntaxError(f"unexpected character {sql[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        # ``--`` line comments are whitespace to the grammar, so a
        # commented-out statement or an annotated .sql script never
        # produces phantom tokens (or phantom empty statements).
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind=kind, text=match.group(), position=pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.index = 0

    # -- token-stream helpers -------------------------------------------------

    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> str:
        token = self._next()
        if token.kind != "ident" or token.text.upper() not in keywords:
            expected = " ".join(keywords)
            raise QuerySyntaxError(
                f"expected keyword {expected!r} at offset {token.position}, got {token.text!r}"
            )
        return token.text.upper()

    def _expect_symbol(self, symbol: str) -> None:
        token = self._next()
        if token.kind != "symbol" or token.text != symbol:
            raise QuerySyntaxError(
                f"expected {symbol!r} at offset {token.position}, got {token.text!r}"
            )

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "ident" and token.text.upper() == keyword

    def _at_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "symbol" and token.text == symbol

    # -- grammar productions ---------------------------------------------------

    def parse(self) -> ParsedQuery:
        """Parse exactly one statement (optional trailing semicolons)."""
        query = self._statement()
        while self._at_symbol(";"):
            self._next()
        trailing = self._peek()
        if trailing is not None:
            raise QuerySyntaxError(
                f"unexpected trailing input at offset {trailing.position}: "
                f"{trailing.text!r} (use parse_script for multi-statement input)"
            )
        return query

    def parse_script(self) -> list[ParsedQuery]:
        """Parse a whole ``;``-separated script (empty statements skipped)."""
        statements: list[ParsedQuery] = []
        while True:
            while self._at_symbol(";"):
                self._next()
            if self._peek() is None:
                return statements
            statements.append(self._statement())
            if self._peek() is not None and not self._at_symbol(";"):
                trailing = self._peek()
                raise QuerySyntaxError(
                    f"expected ';' between statements at offset {trailing.position}, "
                    f"got {trailing.text!r}"
                )

    def _statement(self) -> ParsedQuery:
        self._expect_keyword("SELECT")
        self._expect_symbol("*")
        self._expect_keyword("FROM")
        table = self._identifier("table name")

        self._expect_keyword("WHERE")
        predicate = self._udf_call()

        oracle_limit: int | None = None
        if self._at_keyword("ORACLE"):
            self._next()
            self._expect_keyword("LIMIT")
            oracle_limit = self._integer("oracle limit")

        self._expect_keyword("USING")
        proxy = self._udf_call()

        recall_target: float | None = None
        precision_target: float | None = None
        while self._at_keyword("RECALL") or self._at_keyword("PRECISION"):
            which = self._next().text.upper()
            self._expect_keyword("TARGET")
            value = self._fraction(f"{which.lower()} target")
            if which == "RECALL":
                if recall_target is not None:
                    raise QuerySyntaxError("duplicate RECALL TARGET clause")
                recall_target = value
            else:
                if precision_target is not None:
                    raise QuerySyntaxError("duplicate PRECISION TARGET clause")
                precision_target = value
        if recall_target is None and precision_target is None:
            raise QuerySyntaxError("query must specify a RECALL or PRECISION TARGET")

        self._expect_keyword("WITH")
        self._expect_keyword("PROBABILITY")
        probability = self._fraction("probability")

        joint = recall_target is not None and precision_target is not None
        if joint and oracle_limit is not None:
            raise QuerySyntaxError(
                "joint-target queries take no ORACLE LIMIT (Figure 14 of the paper); "
                "the oracle may be queried an unbounded number of times"
            )
        if not joint and oracle_limit is None:
            raise QuerySyntaxError("single-target queries require an ORACLE LIMIT clause")

        return ParsedQuery(
            table=table,
            predicate=predicate,
            proxy=proxy,
            oracle_limit=oracle_limit,
            recall_target=recall_target,
            precision_target=precision_target,
            probability=probability,
        )

    def _identifier(self, what: str) -> str:
        token = self._next()
        if token.kind != "ident":
            raise QuerySyntaxError(
                f"expected {what} at offset {token.position}, got {token.text!r}"
            )
        return token.text

    def _integer(self, what: str) -> int:
        token = self._next()
        cleaned = token.text.replace(",", "")
        if token.kind != "number" or "%" in token.text or "." in token.text:
            raise QuerySyntaxError(
                f"expected integer {what} at offset {token.position}, got {token.text!r}"
            )
        value = int(cleaned)
        # The dialect allows comma-grouped numbers like 10,000: the
        # tokenizer splits them, so absorb following ,ddd groups.
        while self._is_comma_group():
            self._next()  # the comma
            group = self._next()
            value = value * 1000 + int(group.text)
        if value <= 0:
            raise QuerySyntaxError(f"{what} must be positive, got {value}")
        return value

    def _is_comma_group(self) -> bool:
        comma = self._peek()
        if comma is None or comma.kind != "symbol" or comma.text != ",":
            return False
        if self.index + 1 >= len(self.tokens):
            return False
        group = self.tokens[self.index + 1]
        return group.kind == "number" and len(group.text) == 3 and group.text.isdigit()

    def _fraction(self, what: str) -> float:
        token = self._next()
        if token.kind != "number":
            raise QuerySyntaxError(
                f"expected {what} at offset {token.position}, got {token.text!r}"
            )
        text = token.text
        if text.endswith("%"):
            value = float(text[:-1]) / 100.0
        else:
            value = float(text)
            # Bare numbers above 1 are read as percentages ("TARGET 95").
            if value > 1.0:
                value /= 100.0
        if not (0.0 < value <= 1.0):
            raise QuerySyntaxError(f"{what} must be in (0, 1], got {token.text!r}")
        return value

    def _udf_call(self) -> UdfCall:
        name = self._identifier("UDF name")
        argument = ""
        comparison: str | None = None

        token = self._peek()
        if token is not None and token.kind == "symbol" and token.text == "(":
            self._next()
            parts: list[str] = []
            depth = 1
            while depth > 0:
                inner = self._next()
                if inner.kind == "symbol" and inner.text == "(":
                    depth += 1
                elif inner.kind == "symbol" and inner.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                parts.append(inner.text)
            argument = " ".join(parts)

        token = self._peek()
        if token is not None and token.kind == "symbol" and token.text == "=":
            self._next()
            literal = self._next()
            if literal.kind not in ("ident", "string", "number"):
                raise QuerySyntaxError(
                    f"expected literal after '=' at offset {literal.position}, "
                    f"got {literal.text!r}"
                )
            comparison = literal.text

        return UdfCall(name=name, argument=argument, comparison=comparison)


def parse_query(sql: str) -> ParsedQuery:
    """Parse a single SUPG dialect query string.

    Args:
        sql: query text in the Figure 3 (single-target) or Figure 14
            (joint-target) shape.  A trailing semicolon is allowed;
            additional statements are not (use :func:`parse_script`).

    Returns:
        The parsed AST.

    Raises:
        QuerySyntaxError: with offset information on any mismatch.
    """
    return _Parser(sql).parse()


def split_script(sql: str) -> tuple[list[str], str]:
    """Split complete ``;``-terminated statement texts off a buffer.

    This is the streaming front-end of :func:`parse_script`: a server
    reading statements incrementally (``repro serve``) needs to know
    which prefix of its input buffer is complete.  The split is
    tokenizer-aware — a ``;`` inside a ``--`` comment or a string
    literal never splits, unlike a naive ``text.split(";")``.

    Returns:
        ``(statements, remainder)`` — the text of every statement whose
        terminating ``;`` has arrived (comment-only/blank segments
        included; callers filter with :func:`parse_script`), and the
        unterminated tail.  A buffer that does not tokenize yet (e.g. a
        string literal still missing its closing quote) is returned
        whole as the remainder, so callers simply wait for more input.
    """
    try:
        tokens = _tokenize(sql)
    except QuerySyntaxError:
        return [], sql
    statements: list[str] = []
    start = 0
    for token in tokens:
        if token.kind == "symbol" and token.text == ";":
            statements.append(sql[start : token.position])
            start = token.position + 1
    return statements, sql[start:]


def parse_script(sql: str) -> list[ParsedQuery]:
    """Parse a multi-statement SUPG script.

    Statements are separated by ``;`` (empty statements and a trailing
    semicolon are tolerated).  This is the input shape of
    :meth:`repro.query.engine.SupgEngine.execute_many` and the
    ``repro plan <queries.sql>`` / batch ``repro query`` CLI paths.

    Returns:
        The parsed statements, in input order (possibly empty).

    Raises:
        QuerySyntaxError: with offset information on any mismatch.
    """
    return _Parser(sql).parse_script()
