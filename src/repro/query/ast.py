"""Abstract syntax tree for the SUPG query dialect.

Figure 3 of the paper defines the budgeted single-target syntax::

    SELECT * FROM table_name
    WHERE filter_predicate
    ORACLE LIMIT o
    USING proxy_estimates
    [RECALL | PRECISION] TARGET t
    WITH PROBABILITY p

and Figure 14 the joint-target variant (both targets, no budget)::

    SELECT * FROM table_name
    WHERE filter_predicate
    USING proxy_estimates
    RECALL TARGET tr
    PRECISION TARGET tp
    WITH PROBABILITY p

The AST captures both shapes in one dataclass; :meth:`ParsedQuery.kind`
distinguishes them and the ``to_*`` converters produce the core query
objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.joint import JointQuery
from ..core.types import ApproxQuery, TargetType

__all__ = ["UdfCall", "ParsedQuery", "QueryKind"]


@dataclass(frozen=True)
class UdfCall:
    """A user-defined-function reference in a query.

    The dialect's predicates look like ``HUMMINGBIRD_PRESENT(frame) =
    True`` or ``DNN_CLASSIFIER(frame) = "hummingbird"``; SUPG treats
    them as opaque callbacks (Section 4.1), so the AST keeps just the
    resolvable name, the argument text, and the optional comparison
    literal.

    Attributes:
        name: the UDF identifier.
        argument: the raw argument expression text (may be empty).
        comparison: the right-hand-side literal text, if any.
    """

    name: str
    argument: str = ""
    comparison: str | None = None

    def render(self) -> str:
        """Reconstruct the predicate's surface syntax."""
        text = f"{self.name}({self.argument})"
        if self.comparison is not None:
            text += f" = {self.comparison}"
        return text


class QueryKind:
    """The two query shapes of the dialect."""

    SINGLE = "single"
    JOINT = "joint"


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed SUPG query, covering Figure 3 and Figure 14 shapes.

    Attributes:
        table: the FROM table name.
        predicate: the oracle predicate UDF (WHERE clause).
        proxy: the proxy UDF (USING clause).
        oracle_limit: the oracle budget; None for joint-target queries.
        recall_target: RT gamma, if present.
        precision_target: PT gamma, if present.
        probability: the success probability ``p`` (so delta = 1 - p).
    """

    table: str
    predicate: UdfCall
    proxy: UdfCall
    oracle_limit: int | None
    recall_target: float | None
    precision_target: float | None
    probability: float

    @property
    def kind(self) -> str:
        """``QueryKind.SINGLE`` or ``QueryKind.JOINT``."""
        if self.recall_target is not None and self.precision_target is not None:
            return QueryKind.JOINT
        return QueryKind.SINGLE

    @property
    def delta(self) -> float:
        """Failure probability ``1 - p``."""
        return 1.0 - self.probability

    def to_approx_query(self) -> ApproxQuery:
        """Convert a single-target parse to an :class:`ApproxQuery`.

        Raises:
            ValueError: for joint-target queries (use
                :meth:`to_joint_query`) or missing budget.
        """
        if self.kind == QueryKind.JOINT:
            raise ValueError("joint-target queries convert via to_joint_query()")
        if self.oracle_limit is None:
            raise ValueError("single-target queries require an ORACLE LIMIT budget")
        if self.recall_target is not None:
            return ApproxQuery(
                TargetType.RECALL, self.recall_target, self.delta, self.oracle_limit
            )
        if self.precision_target is not None:
            return ApproxQuery(
                TargetType.PRECISION, self.precision_target, self.delta, self.oracle_limit
            )
        raise ValueError("query specifies neither a recall nor a precision target")

    def to_joint_query(self, stage_budget: int) -> JointQuery:
        """Convert a joint-target parse to a :class:`JointQuery`.

        Args:
            stage_budget: the optimistic stage-1/2 allocation ``B``
                (Appendix A); the dialect itself specifies no budget.
        """
        if self.kind != QueryKind.JOINT:
            raise ValueError("single-target queries convert via to_approx_query()")
        assert self.recall_target is not None and self.precision_target is not None
        return JointQuery(
            recall_gamma=self.recall_target,
            precision_gamma=self.precision_target,
            delta=self.delta,
            stage_budget=stage_budget,
        )
