"""Execution engine for SUPG dialect queries.

Ties the query layer to the core selectors: tables are registered
datasets, and the WHERE / USING clauses name user-defined functions
(callbacks, per Section 4.1 of the paper) that produce oracle labels
and proxy scores.  When no UDF is registered under a clause's name the
engine falls back to the dataset's built-in ground truth and proxy
scores, which is the common case for the bundled workloads.

The engine is a *long-lived session*: it owns an
:class:`~repro.core.pipeline.ExecutionContext` whose sample store
persists across ``execute()`` calls.  Repeated queries against a
registered table therefore stop re-sampling — a labeled oracle sample
drawn for one query is replayed (bit-exactly) by any later query that
shares its sampling design, seed, and budget, e.g. the same query at a
different target, or a different selector over the same design.
Proxy-UDF-derived datasets are cached per (table, UDF) as well, so
their sorted-score statistics are computed once rather than per query.

Batch execution
---------------

:meth:`SupgEngine.execute_many` plans a whole batch before running it:
every statement is parsed and compiled, a
:class:`~repro.core.planning.QueryPlan` groups the executions by
(dataset fingerprint × :class:`~repro.sampling.designs.SampleDesign` ×
seed), and each distinct design is pre-drawn exactly once — spilled to
the disk tier when the engine has a ``store_dir`` — *before* any
query executes or any worker forks.  Independent groups then fan
across ``jobs`` worker processes (fork inheritance hands every worker
the warm store), and results return in statement order, bit-identical
to a sequential ``execute()`` loop.  :meth:`SupgEngine.plan` exposes
the same dedup plan without executing anything.

Two situations run through the same staged path but never touch the
store: oracle UDFs (labels then come from user code whose identity the
store cannot safely key) and generator seeds (no stable cache key).
Joint queries also run uncached — their three stages share one
unbudgeted oracle whose accounting is inherently per-query.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.forksafe import ForkSafeLock
from ..core.joint import JointSelector
from ..core.pipeline import ExecutionContext, SampleStore
from ..core.planning import (
    QueryPlan,
    effective_workers,
    plan_executions,
)
from ..core.registry import default_selector, make_selector
from ..core.shm import PlaneIntegrityError, SharedArrayPlane
from ..core.stats_backend import (
    DEFAULT_CHUNK_RECORDS,
    DiskBackend,
    InMemoryBackend,
    StatisticsBackend,
)
from ..core.types import SelectionResult
from ..datasets import Dataset
from ..faults import maybe_kill_worker, wrap_label_fn
from ..oracle import BudgetedOracle
from ..oracle.retry import RetryPolicy, RetryingOracle
from .ast import ParsedQuery, QueryKind
from .parser import parse_query, parse_script

__all__ = ["SupgEngine", "QueryExecution"]

#: An oracle UDF maps (dataset, record indices) to 0/1 labels.
OracleUdf = Callable[[Dataset, np.ndarray], np.ndarray]

#: A proxy UDF maps a dataset to a full vector of proxy scores.
ProxyUdf = Callable[[Dataset], np.ndarray]


@dataclass(frozen=True)
class QueryExecution:
    """The outcome of one engine run.

    Attributes:
        parsed: the query AST.
        result: the selection result (indices, threshold, oracle usage).
        dataset: the table the query ran against (post proxy-UDF).
        method: registry name of the selector that executed the query.
    """

    parsed: ParsedQuery
    result: SelectionResult
    dataset: Dataset
    method: str


@dataclass
class _CompiledQuery:
    """One parsed statement bound to its dataset, selector, and oracle.

    Compilation is shared by ``execute``, ``execute_many``, and
    ``plan``, so the three entry points cannot drift: a batch runs
    exactly the selections the sequential loop would.
    """

    index: int
    parsed: ParsedQuery
    dataset: Dataset
    selector: object  # Selector | JointSelector
    method: str
    seed: int | np.random.Generator
    oracle_factory: Callable[[], BudgetedOracle] | None = None

    @property
    def joint(self) -> bool:
        return self.parsed.kind == QueryKind.JOINT

    def run(self, context: ExecutionContext | None) -> SelectionResult:
        """Execute this compiled query (the worker-side unit of work)."""
        if self.joint:
            return self.selector.select(self.dataset, seed=self.seed)
        oracle = self.oracle_factory() if self.oracle_factory is not None else None
        return self.selector.select(
            self.dataset,
            seed=self.seed,
            oracle=oracle,
            context=context if oracle is None else None,
        )


# Worker-process state for the batch fan-out, installed by the pool
# initializer.  Compiled queries, the warm context, and the shared-array
# plane travel to workers by fork inheritance (datasets, closures, the
# pre-drawn sample store, and the plane's published views are shared
# pages rather than pickled per task).
_WORKER_STATE: dict[str, tuple] = {}


def _init_batch_worker(
    compiled: Sequence[_CompiledQuery],
    context: ExecutionContext | None,
    plane: SharedArrayPlane | None = None,
    call_id: int = 0,
) -> None:
    _WORKER_STATE["batch"] = (tuple(compiled), context, plane, call_id)


def _run_batch(indices: Sequence[int]):
    maybe_kill_worker(indices)  # chaos seam; no-op unless a fault plan is active
    compiled, context, plane, call_id = _WORKER_STATE["batch"]
    pairs = [(index, compiled[index].run(context)) for index in indices]
    if plane is None:
        return pairs
    return plane.encode_batch(
        call_id,
        indices[0],
        ((index, result, compiled[index].dataset.size) for index, result in pairs),
    )


class SupgEngine:
    """Registry of tables and UDFs plus a session-scoped query executor.

    Args:
        context: optional externally owned execution context; by
            default the engine creates its own, giving every engine
            instance an independent sample store.
        store_dir: spill directory for the sample store's persistent
            tier.  Engine sessions sharing a directory — including
            sessions in different processes, or across restarts —
            reuse each other's labeled oracle samples (the paper's
            cost model charges per distinct labeled record, so spilled
            labels are real savings).  Mutually exclusive with
            ``context``; construct the context's store with
            ``SampleStore(store_dir=...)`` instead.
        retry_policy: oracle retry configuration
            (:class:`~repro.oracle.retry.RetryPolicy`) applied to every
            label-drawing path of this session — store draws, fresh
            draws, and oracle UDFs.  Mutually exclusive with
            ``context`` for the same reason as ``store_dir``; construct
            the context's store with ``SampleStore(retry_policy=...)``
            instead.
        data_plane: how parallel fan-outs share arrays with workers —
            ``"shm"`` (POSIX shared memory), ``"mmap"`` (files under
            the store directory), or ``"pickle"`` (the plane is
            disabled; results ride the pool pipe).  ``None`` uses the
            ambient :func:`repro.core.shm.default_mode` (the CLI's
            ``--data-plane``).  Results are bit-identical in every
            mode.
        backend: where each registered dataset's derived statistics
            live — ``"memory"`` (RAM ndarrays, the default),
            ``"disk"`` (fingerprint-keyed ``.npy`` files under the
            store directory, opened as read-only memmap windows;
            construction is chunked so peak RSS stays O(chunk_records)
            rather than O(n)), or an already constructed
            :class:`~repro.core.stats_backend.StatisticsBackend`.
            ``"disk"`` requires a persistent ``store_dir``.  Query
            results are byte-identical across backends.
        chunk_records: records per chunk for the disk backend's
            external sort and streaming weight passes (default
            :data:`~repro.core.stats_backend.DEFAULT_CHUNK_RECORDS`).
            Only meaningful with ``backend="disk"``.

    Example::

        engine = SupgEngine()
        engine.register_table("hummingbird_video", dataset)
        execution = engine.execute('''
            SELECT * FROM hummingbird_video
            WHERE HUMMINGBIRD_PRESENT(frame) = True
            ORACLE LIMIT 1000
            USING DNN_CLASSIFIER(frame) = "hummingbird"
            RECALL TARGET 95%
            WITH PROBABILITY 95%
        ''', seed=0)
    """

    def __init__(
        self,
        context: ExecutionContext | None = None,
        store_dir: str | None = None,
        retry_policy: RetryPolicy | None = None,
        data_plane: str | None = None,
        backend: "str | StatisticsBackend | None" = None,
        chunk_records: int | None = None,
    ) -> None:
        if context is not None and store_dir is not None:
            raise ValueError(
                "SupgEngine(context=..., store_dir=...) is ambiguous; construct "
                "the context with SampleStore(store_dir=...) instead"
            )
        if context is not None and retry_policy is not None:
            raise ValueError(
                "SupgEngine(context=..., retry_policy=...) is ambiguous; construct "
                "the context with SampleStore(retry_policy=...) instead"
            )
        self._tables: dict[str, Dataset] = {}
        self._oracle_udfs: dict[str, OracleUdf] = {}
        self._proxy_udfs: dict[str, ProxyUdf] = {}
        self._derived: dict[tuple[str, str], Dataset] = {}
        if context is None:
            context = ExecutionContext(
                store=SampleStore(store_dir=store_dir, retry_policy=retry_policy)
            )
        self._context = context
        self._stats_backend = self._make_backend(backend, chunk_records)
        self._data_plane = data_plane
        self._plane: SharedArrayPlane | None = None
        self._plane_calls = 0
        self._retired_transfer = {"bytes_shipped": 0, "bytes_shm": 0, "stats_inherited": 0}
        # Concurrent service windows share one engine: plane lifecycle,
        # call-id allocation, transfer accounting, and the derived-
        # dataset cache are the mutable session state they race on.
        self._lock = ForkSafeLock()

    def _make_backend(
        self, backend: "str | StatisticsBackend | None", chunk_records: int | None
    ) -> StatisticsBackend:
        if isinstance(backend, StatisticsBackend):
            if chunk_records is not None:
                raise ValueError(
                    "chunk_records is part of the backend instance; pass "
                    "DiskBackend(..., chunk_records=...) or the string 'disk'"
                )
            return backend
        if backend in (None, "memory"):
            if chunk_records is not None:
                raise ValueError("chunk_records requires backend='disk'")
            return InMemoryBackend()
        if backend == "disk":
            store_dir = self._context.store.store_dir
            if store_dir is None:
                raise ValueError(
                    "backend='disk' requires a persistent store directory; the "
                    "statistic files live next to the store's spills (pass "
                    "store_dir=... or --store-dir)"
                )
            return DiskBackend(
                store_dir,
                chunk_records=(
                    DEFAULT_CHUNK_RECORDS if chunk_records is None else chunk_records
                ),
            )
        raise ValueError(
            f"unknown statistics backend {backend!r}; choose 'memory' or 'disk'"
        )

    # -- registration ----------------------------------------------------------

    def register_table(
        self,
        name: str,
        dataset: Dataset,
        backend: "StatisticsBackend | None" = None,
    ) -> None:
        """Register a dataset under a table name.

        The dataset's derived statistics are routed through the
        engine's statistics backend (or a per-table ``backend``
        override), and — when the engine has a persistent store
        directory — its zone-map index is armed for *lazy* sidecar
        priming: nothing is sorted or built here; the first query that
        needs the index loads the fingerprint-keyed sidecar when a
        fresh one exists (zero redundant sorts on a warm restart) and
        builds + persists it otherwise.
        """
        if not name:
            raise ValueError("table name must be non-empty")
        dataset.use_backend(backend if backend is not None else self._stats_backend)
        self._tables[name] = dataset
        self._invalidate_derived(table=name)
        self._prime_zone_map(dataset)

    def register_oracle_udf(self, name: str, fn: OracleUdf) -> None:
        """Register a WHERE-clause oracle predicate by UDF name."""
        self._oracle_udfs[name.upper()] = fn

    def register_proxy_udf(self, name: str, fn: ProxyUdf) -> None:
        """Register a USING-clause proxy scorer by UDF name."""
        self._proxy_udfs[name.upper()] = fn
        self._invalidate_derived(proxy=name.upper())

    def tables(self) -> tuple[str, ...]:
        """Registered table names."""
        return tuple(sorted(self._tables))

    # -- session state ---------------------------------------------------------

    @property
    def context(self) -> ExecutionContext:
        """The session's execution context (shared sample store)."""
        return self._context

    def session_stats(self) -> Mapping[str, int]:
        """Sample-store reuse counters, data-plane byte accounting,
        zone-map skipping telemetry, and statistics-backend counters."""
        stats = dict(self._context.stats())
        stats.update(self.transfer_stats())
        stats.update(self.skipping_stats())
        stats.update(self.backend_stats())
        return stats

    @property
    def stats_backend(self) -> StatisticsBackend:
        """The session's statistics backend (registered tables share it)."""
        return self._stats_backend

    def backend_stats(self) -> Mapping[str, int]:
        """Statistics-backend counters for this session.

        ``sorts_performed``/``weight_passes`` count constructions (a
        warm disk file costs zero of either), ``chunks_merged`` and
        ``peak_chunk_bytes`` describe external-sort work, ``bytes_paged``
        accounts the bytes paged in by out-of-core threshold scans, and
        ``stats_quarantined`` counts corrupt statistic files moved aside
        and rebuilt.
        """
        return dict(self._stats_backend.counters)

    def skipping_stats(self) -> Mapping[str, int]:
        """Zone-map data-skipping counters, summed over session datasets.

        ``zonemap_selects`` counts indexed ``select_above`` calls,
        ``strata_touched``/``records_skipped`` the strata read and the
        records those selections never visited, and
        ``zonemap_dense_fallbacks`` the selections that reverted to the
        dense scan (near-total selections).  Only maps already built in
        this process are read (never forcing a build), so the totals
        reflect parent-side work — prewarm, sequential execution, and
        worker-death recovery; counts inside forked workers die with
        the fork.
        """
        totals = {
            "zonemap_selects": 0,
            "strata_touched": 0,
            "records_skipped": 0,
            "zonemap_dense_fallbacks": 0,
        }
        seen: set[int] = set()
        with self._lock:
            datasets = list(self._tables.values()) + list(self._derived.values())
        for dataset in datasets:
            zone_map = dataset.__dict__.get("zone_map")
            if zone_map is None or id(zone_map) in seen:
                continue
            seen.add(id(zone_map))
            for key, value in zone_map.counters.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def _prime_zone_map(self, dataset: Dataset) -> None:
        """Arm the dataset's zone map for the store-dir sidecar tier.

        Deliberately lazy: registration used to force the O(n log n)
        sort (and the index build) eagerly even when a warm sidecar
        made both redundant.  Now only the sidecar *directory* is
        recorded; :attr:`Dataset.zone_map` consults it on first access,
        loading a warm sidecar without ever touching ``sorted_scores``.
        """
        from ..core.zonemap import MIN_INDEXED_SIZE

        store_dir = self._context.store.store_dir
        if store_dir is None or dataset.size < MIN_INDEXED_SIZE:
            return
        dataset.prime_zone_map(store_dir)

    def transfer_stats(self) -> Mapping[str, int]:
        """Result-transfer byte counters for this engine session.

        ``bytes_shipped`` counts index-array bytes that rode the worker
        pipe inline; ``bytes_shm`` counts bytes moved through shm
        segments / mmap spills instead.  Totals persist across plane
        releases.
        """
        with self._lock:
            totals = dict(self._retired_transfer)
            if self._plane is not None:
                for key, value in self._plane.counters().items():
                    totals[key] = totals.get(key, 0) + value
            return totals

    def _ensure_plane(self) -> SharedArrayPlane:
        """The session's shared-array plane, (re)created on demand."""
        with self._lock:
            if self._plane is not None and self._plane.closed:
                self.release_plane()
            if self._plane is None:
                store_dir = self._context.store.store_dir
                self._plane = SharedArrayPlane(
                    mode=self._data_plane, directory=store_dir
                )
            return self._plane

    def release_plane(self) -> None:
        """Release the shared-array plane (segments, spill files).

        Published datasets revert to locally owned statistics and the
        byte counters fold into :meth:`transfer_stats`; the next
        parallel batch simply builds a fresh plane.  Idempotent.
        """
        with self._lock:
            if self._plane is None:
                return
            for key, value in self._plane.counters().items():
                self._retired_transfer[key] = self._retired_transfer.get(key, 0) + value
            self._plane.close()
            self._plane = None

    def close(self) -> None:
        """Release session resources; the engine stays usable."""
        self.release_plane()

    def reset_session(self) -> None:
        """Drop cached samples and derived datasets (registrations stay)."""
        self._context.store.clear()
        self._derived.clear()

    def _invalidate_derived(self, table: str | None = None, proxy: str | None = None) -> None:
        stale = [
            key
            for key in self._derived
            if (table is not None and key[0] == table)
            or (proxy is not None and key[1] == proxy)
        ]
        for key in stale:
            del self._derived[key]

    # -- compilation -----------------------------------------------------------

    def _compile(
        self,
        index: int,
        parsed: ParsedQuery,
        seed: int | np.random.Generator,
        method: str | None,
        stage_budget: int,
        selector_kwargs: Mapping[str, object],
    ) -> _CompiledQuery:
        """Bind one parsed statement to its dataset, selector, and oracle."""
        dataset = self._resolve_table(parsed)
        dataset = self._apply_proxy_udf(parsed, dataset)

        if parsed.kind == QueryKind.JOINT:
            joint_query = parsed.to_joint_query(stage_budget=stage_budget)
            selector = JointSelector(joint_query, method=method or "is", **selector_kwargs)
            return _CompiledQuery(
                index=index,
                parsed=parsed,
                dataset=dataset,
                selector=selector,
                method=f"joint-{method or 'is'}",
                seed=seed,
            )

        query = parsed.to_approx_query()
        if method is None:
            selector = default_selector(query, **selector_kwargs)
        else:
            selector = make_selector(method, query, **selector_kwargs)
        return _CompiledQuery(
            index=index,
            parsed=parsed,
            dataset=dataset,
            selector=selector,
            method=selector.name,
            seed=seed,
            oracle_factory=self._oracle_factory(parsed, dataset, query.budget),
        )

    def _parse_batch(
        self, queries: "str | Sequence[str | ParsedQuery]"
    ) -> list[ParsedQuery]:
        """Normalize batch input: one multi-statement string, or a
        sequence of statements / pre-parsed queries."""
        if isinstance(queries, str):
            return parse_script(queries)
        parsed: list[ParsedQuery] = []
        for query in queries:
            if isinstance(query, ParsedQuery):
                parsed.append(query)
            else:
                parsed.extend(parse_script(query))
        return parsed

    @staticmethod
    def _broadcast(value, count: int, what: str) -> list:
        """Expand a scalar per-query parameter, or validate a sequence.

        numpy arrays count as sequences: ``seed=np.arange(3)`` means
        per-statement seeds, not one array-entropy seed shared by all
        statements (``default_rng`` would silently accept the latter).
        """
        if isinstance(value, (list, tuple, np.ndarray)):
            if len(value) != count:
                raise ValueError(
                    f"{what} sequence has {len(value)} entries for {count} statements"
                )
            return [
                item.item() if isinstance(item, np.generic) else item
                for item in value
            ]
        return [value] * count

    def _compile_batch(
        self,
        queries,
        seed,
        method,
        stage_budget: int,
        selector_kwargs: Mapping[str, object],
    ) -> list[_CompiledQuery]:
        parsed = self._parse_batch(queries)
        seeds = self._broadcast(seed, len(parsed), "seed")
        methods = self._broadcast(method, len(parsed), "method")
        return [
            self._compile(index, statement, seeds[index], methods[index],
                          stage_budget, selector_kwargs)
            for index, statement in enumerate(parsed)
        ]

    def _plan_compiled(self, compiled: Sequence[_CompiledQuery]) -> QueryPlan:
        """Group compiled queries by their shared oracle draws."""
        specs = []
        for job in compiled:
            label = f"{job.method} on {job.parsed.table}"
            if job.joint:
                note = "joint query (unbudgeted shared oracle)"
                specs.append((label, job.dataset, None, job.seed, note))
            elif job.oracle_factory is not None:
                note = "oracle UDF bypasses the sample store"
                specs.append((label, job.dataset, None, job.seed, note))
            else:
                specs.append((label, job.dataset, job.selector, job.seed, ""))
        return plan_executions(specs)

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        sql: str,
        seed: int | np.random.Generator = 0,
        method: str | None = None,
        stage_budget: int = 1000,
        reuse_samples: bool = True,
        **selector_kwargs,
    ) -> QueryExecution:
        """Parse and run a SUPG dialect query.

        Args:
            sql: query text (Figure 3 or Figure 14 shape).
            seed: randomness for sampling.
            method: selector registry name; defaults to the SUPG method
                for the query type (IS-CI-R / two-stage IS-CI-P).  For
                joint queries, one of ``"is"``, ``"uniform"``, ``"noci"``.
            stage_budget: stage-1/2 budget for joint-target queries.
            reuse_samples: serve the draw stage from the session's
                sample store when legal (no oracle UDF, integer seed).
                Results are bit-identical either way.
            **selector_kwargs: forwarded to the selector constructor.

        Returns:
            A :class:`QueryExecution`.

        Raises:
            KeyError: unknown table.
            repro.query.parser.QuerySyntaxError: malformed query text.
        """
        job = self._compile(0, parse_query(sql), seed, method, stage_budget, selector_kwargs)
        result = job.run(self._context if reuse_samples else None)
        return QueryExecution(
            parsed=job.parsed, result=result, dataset=job.dataset, method=job.method
        )

    def plan(
        self,
        queries: "str | Sequence[str | ParsedQuery]",
        seed: "int | Sequence[int]" = 0,
        method: "str | Sequence[str | None] | None" = None,
        stage_budget: int = 1000,
        **selector_kwargs,
    ) -> QueryPlan:
        """Build the dedup plan for a batch without executing anything.

        Accepts exactly the inputs of :meth:`execute_many`; the
        returned :class:`~repro.core.planning.QueryPlan` reports the
        distinct (dataset × design × seed) draws the batch needs, which
        statements share them, and an upper bound on oracle labels
        drawn/saved.  ``repro plan <queries.sql>`` prints it.
        """
        compiled = self._compile_batch(queries, seed, method, stage_budget, selector_kwargs)
        return self._plan_compiled(compiled)

    def execute_many(
        self,
        queries: "str | Sequence[str | ParsedQuery]",
        *,
        seed: "int | Sequence[int]" = 0,
        method: "str | Sequence[str | None] | None" = None,
        jobs: int | None = None,
        stage_budget: int = 1000,
        reuse_samples: bool = True,
        **selector_kwargs,
    ) -> list[QueryExecution]:
        """Plan and run a batch of queries; results in statement order.

        The batch is compiled, grouped by shared oracle draw, and each
        distinct (dataset × design × seed) is pre-drawn exactly once
        into the session store (spilling to disk when the engine has a
        ``store_dir``) before anything executes.  With ``jobs > 1``,
        workers fork *after* that warm-up, so every group is served
        from the inherited store instead of being re-drawn per worker.

        Results are bit-identical to a sequential ``execute()`` loop
        over the same statements, for any ``jobs``.

        Args:
            queries: one multi-statement string (``;``-separated), or a
                sequence of statements / pre-parsed queries.
            seed: one seed for every statement, or a per-statement
                sequence.
            method: one selector registry name for every statement, or
                a per-statement sequence (``None`` entries use the
                query-type default).
            jobs: worker processes for the group fan-out (``-1`` = all
                cores; ``None``/``1`` = sequential).
            stage_budget: stage-1/2 budget for joint-target queries.
            reuse_samples: disable to skip the plan warm-up and the
                store entirely (every statement draws fresh).
            **selector_kwargs: forwarded to every selector constructor.
        """
        compiled = self._compile_batch(queries, seed, method, stage_budget, selector_kwargs)
        if not compiled:
            return []
        plan = self._plan_compiled(compiled)
        context = self._context if reuse_samples else None
        if context is not None:
            plan.prewarm(context.store)
        workers = effective_workers(jobs, len(compiled), "execute_many(jobs=...)")
        if workers > 1:
            results, recovered = self._run_batches_parallel(compiled, plan, context, workers)
            if recovered:
                warnings.warn(
                    f"execute_many recovered {len(recovered)} execution group(s) "
                    "sequentially after a worker process died; results are "
                    "unaffected",
                    RuntimeWarning,
                    stacklevel=2,
                )
        else:
            results = [job.run(context) for job in compiled]
        return [
            QueryExecution(
                parsed=job.parsed, result=result, dataset=job.dataset, method=job.method
            )
            for job, result in zip(compiled, results)
        ]

    def _run_batches_parallel(
        self,
        compiled: Sequence[_CompiledQuery],
        plan: QueryPlan,
        context: ExecutionContext | None,
        workers: int,
    ) -> tuple[list[SelectionResult], list[list[int]]]:
        """Fan the plan's independent batches across a fork pool.

        Before forking, every distinct dataset in the batch is
        published into the session's shared-array plane, so workers
        read the big statistics (proxy scores, sorted scores,
        importance weights) from genuinely shared pages; a group's
        statements stay together so any residual lazy draw (e.g. an
        oracle-UDF statement) happens once on one worker.  Workers
        return results through the plane's spill-or-shm transfer
        (:meth:`~repro.core.shm.SharedArrayPlane.encode_batch`): small
        batches ride the pipe, large index arrays come back through a
        segment the parent decodes and releases.

        Built on :class:`~concurrent.futures.ProcessPoolExecutor`
        rather than ``multiprocessing.Pool`` because a worker that dies
        mid-batch (OOM kill, segfault, chaos injection) must *surface*
        — the executor raises ``BrokenProcessPool`` where a plain pool
        would hang ``map()`` forever.  Batches lost to a dead worker —
        or whose transfer cannot be decoded (the corrupt spill is
        quarantined) — are re-executed sequentially in the parent from
        the already pre-warmed store, so the recovered results are
        bit-identical to an unfaulted run; any segment the dead worker
        left behind is reclaimed by its deterministic name.

        Returns:
            ``(results, recovered_batches)`` — results in statement
            order, plus the batches (execution-index lists) that had to
            be re-executed after a worker death.
        """
        batches = plan.batches()
        # One critical section covers plane acquisition, call-id
        # allocation, and dataset publication: a concurrent window must
        # not release/rebuild the plane between this window taking a
        # reference and forking its pool, and publish() mutates each
        # dataset's plane handles.
        with self._lock:
            plane = self._ensure_plane()
            call_id = self._plane_calls
            self._plane_calls += 1
            datasets: dict[int, Dataset] = {}
            for job in compiled:
                datasets.setdefault(id(job.dataset), job.dataset)
            for dataset in datasets.values():
                dataset.publish(plane)
        fork = multiprocessing.get_context("fork")
        results: list[SelectionResult | None] = [None] * len(compiled)
        recovered: list[list[int]] = []
        with ProcessPoolExecutor(
            max_workers=min(workers, len(batches)),
            mp_context=fork,
            initializer=_init_batch_worker,
            initargs=(tuple(compiled), context, plane, call_id),
        ) as pool:
            futures = [(pool.submit(_run_batch, batch), batch) for batch in batches]
            for future, batch in futures:
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # The worker running this batch (or a pool-mate that
                    # poisoned the executor) died; every unfinished
                    # future fails the same way.  Collect them for
                    # in-parent re-execution rather than failing the
                    # whole batch call, and sweep any result segment
                    # the worker created before dying.
                    with self._lock:
                        plane.reclaim(call_id, batch[0])
                    recovered.append(batch)
                    continue
                try:
                    with self._lock:
                        decoded = list(plane.decode_batch(payload))
                    for index, result in decoded:
                        results[index] = result
                except PlaneIntegrityError:
                    # The transfer itself was damaged (quarantined
                    # already); recover exactly like a dead worker.
                    recovered.append(batch)
        for batch in recovered:
            for index in batch:
                results[index] = compiled[index].run(context)
        return results, recovered

    # -- resolution helpers ---------------------------------------------------

    def _resolve_table(self, parsed: ParsedQuery) -> Dataset:
        try:
            return self._tables[parsed.table]
        except KeyError:
            raise KeyError(
                f"unknown table {parsed.table!r}; registered: {', '.join(self.tables()) or '-'}"
            ) from None

    def _apply_proxy_udf(self, parsed: ParsedQuery, dataset: Dataset) -> Dataset:
        udf = self._proxy_udfs.get(parsed.proxy.name.upper())
        if udf is None:
            return dataset
        # Cache the derived dataset per (table, UDF): re-deriving every
        # execute() would discard the cached sorted-score statistics and
        # give each query a fresh fingerprint, defeating sample reuse.
        key = (parsed.table, parsed.proxy.name.upper())
        with self._lock:
            derived = self._derived.get(key)
            if derived is None:
                scores = np.asarray(udf(dataset), dtype=float)
                derived = dataset.with_scores(
                    scores, name=f"{dataset.name}|{parsed.proxy.name}"
                ).use_backend(self._stats_backend)
                self._derived[key] = derived
                self._prime_zone_map(derived)
            return derived

    def _oracle_factory(
        self, parsed: ParsedQuery, dataset: Dataset, budget: int | None
    ) -> Callable[[], BudgetedOracle] | None:
        """A fresh-per-run oracle builder for oracle-UDF queries.

        ``BudgetedOracle`` is stateful (memo + budget charge), so each
        run — including each parallel worker — must construct its own.
        """
        udf = self._oracle_udfs.get(parsed.predicate.name.upper())
        if udf is None:
            return None  # the selector labels from dataset ground truth
        retry_policy = self._context.retry_policy

        def build() -> BudgetedOracle:
            def raw_lookup(indices: np.ndarray) -> np.ndarray:
                return np.asarray(udf(dataset, indices))

            # Same layering as the built-in paths: fault seam and retry
            # below the budget layer, so a retried UDF call charges its
            # labels only on the attempt that succeeds.
            lookup = wrap_label_fn(raw_lookup)
            if retry_policy is not None:
                lookup = RetryingOracle(lookup, retry_policy).query
            return BudgetedOracle(lookup, budget=budget)

        return build
