"""Execution engine for SUPG dialect queries.

Ties the query layer to the core selectors: tables are registered
datasets, and the WHERE / USING clauses name user-defined functions
(callbacks, per Section 4.1 of the paper) that produce oracle labels
and proxy scores.  When no UDF is registered under a clause's name the
engine falls back to the dataset's built-in ground truth and proxy
scores, which is the common case for the bundled workloads.

The engine is a *long-lived session*: it owns an
:class:`~repro.core.pipeline.ExecutionContext` whose sample store
persists across ``execute()`` calls.  Repeated queries against a
registered table therefore stop re-sampling — a labeled oracle sample
drawn for one query is replayed (bit-exactly) by any later query that
shares its sampling design, seed, and budget, e.g. the same query at a
different target, or a different selector over the same design.
Proxy-UDF-derived datasets are cached per (table, UDF) as well, so
their sorted-score statistics are computed once rather than per query.

Two situations bypass the store, falling back to the per-query path:
oracle UDFs (labels then come from user code whose identity the store
cannot safely key) and generator seeds (no stable cache key).  Joint
queries also run uncached — their three stages share one unbudgeted
oracle whose accounting is inherently per-query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..core.joint import JointSelector
from ..core.pipeline import ExecutionContext, SampleStore
from ..core.registry import default_selector, make_selector
from ..core.types import SelectionResult
from ..datasets import Dataset
from ..oracle import BudgetedOracle
from .ast import ParsedQuery, QueryKind
from .parser import parse_query

__all__ = ["SupgEngine", "QueryExecution"]

#: An oracle UDF maps (dataset, record indices) to 0/1 labels.
OracleUdf = Callable[[Dataset, np.ndarray], np.ndarray]

#: A proxy UDF maps a dataset to a full vector of proxy scores.
ProxyUdf = Callable[[Dataset], np.ndarray]


@dataclass(frozen=True)
class QueryExecution:
    """The outcome of one engine run.

    Attributes:
        parsed: the query AST.
        result: the selection result (indices, threshold, oracle usage).
        dataset: the table the query ran against (post proxy-UDF).
        method: registry name of the selector that executed the query.
    """

    parsed: ParsedQuery
    result: SelectionResult
    dataset: Dataset
    method: str


class SupgEngine:
    """Registry of tables and UDFs plus a session-scoped query executor.

    Args:
        context: optional externally owned execution context; by
            default the engine creates its own, giving every engine
            instance an independent sample store.
        store_dir: spill directory for the sample store's persistent
            tier.  Engine sessions sharing a directory — including
            sessions in different processes, or across restarts —
            reuse each other's labeled oracle samples (the paper's
            cost model charges per distinct labeled record, so spilled
            labels are real savings).  Mutually exclusive with
            ``context``; construct the context's store with
            ``SampleStore(store_dir=...)`` instead.

    Example::

        engine = SupgEngine()
        engine.register_table("hummingbird_video", dataset)
        execution = engine.execute('''
            SELECT * FROM hummingbird_video
            WHERE HUMMINGBIRD_PRESENT(frame) = True
            ORACLE LIMIT 1000
            USING DNN_CLASSIFIER(frame) = "hummingbird"
            RECALL TARGET 95%
            WITH PROBABILITY 95%
        ''', seed=0)
    """

    def __init__(
        self,
        context: ExecutionContext | None = None,
        store_dir: str | None = None,
    ) -> None:
        if context is not None and store_dir is not None:
            raise ValueError(
                "SupgEngine(context=..., store_dir=...) is ambiguous; construct "
                "the context with SampleStore(store_dir=...) instead"
            )
        self._tables: dict[str, Dataset] = {}
        self._oracle_udfs: dict[str, OracleUdf] = {}
        self._proxy_udfs: dict[str, ProxyUdf] = {}
        self._derived: dict[tuple[str, str], Dataset] = {}
        if context is None:
            context = ExecutionContext(store=SampleStore(store_dir=store_dir))
        self._context = context

    # -- registration ----------------------------------------------------------

    def register_table(self, name: str, dataset: Dataset) -> None:
        """Register a dataset under a table name."""
        if not name:
            raise ValueError("table name must be non-empty")
        self._tables[name] = dataset
        self._invalidate_derived(table=name)

    def register_oracle_udf(self, name: str, fn: OracleUdf) -> None:
        """Register a WHERE-clause oracle predicate by UDF name."""
        self._oracle_udfs[name.upper()] = fn

    def register_proxy_udf(self, name: str, fn: ProxyUdf) -> None:
        """Register a USING-clause proxy scorer by UDF name."""
        self._proxy_udfs[name.upper()] = fn
        self._invalidate_derived(proxy=name.upper())

    def tables(self) -> tuple[str, ...]:
        """Registered table names."""
        return tuple(sorted(self._tables))

    # -- session state ---------------------------------------------------------

    @property
    def context(self) -> ExecutionContext:
        """The session's execution context (shared sample store)."""
        return self._context

    def session_stats(self) -> Mapping[str, int]:
        """Sample-store reuse counters for this engine session."""
        return self._context.stats()

    def reset_session(self) -> None:
        """Drop cached samples and derived datasets (registrations stay)."""
        self._context.store.clear()
        self._derived.clear()

    def _invalidate_derived(self, table: str | None = None, proxy: str | None = None) -> None:
        stale = [
            key
            for key in self._derived
            if (table is not None and key[0] == table)
            or (proxy is not None and key[1] == proxy)
        ]
        for key in stale:
            del self._derived[key]

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        sql: str,
        seed: int | np.random.Generator = 0,
        method: str | None = None,
        stage_budget: int = 1000,
        reuse_samples: bool = True,
        **selector_kwargs,
    ) -> QueryExecution:
        """Parse and run a SUPG dialect query.

        Args:
            sql: query text (Figure 3 or Figure 14 shape).
            seed: randomness for sampling.
            method: selector registry name; defaults to the SUPG method
                for the query type (IS-CI-R / two-stage IS-CI-P).  For
                joint queries, one of ``"is"``, ``"uniform"``, ``"noci"``.
            stage_budget: stage-1/2 budget for joint-target queries.
            reuse_samples: serve the draw stage from the session's
                sample store when legal (no oracle UDF, integer seed).
                Results are bit-identical either way.
            **selector_kwargs: forwarded to the selector constructor.

        Returns:
            A :class:`QueryExecution`.

        Raises:
            KeyError: unknown table.
            repro.query.parser.QuerySyntaxError: malformed query text.
        """
        parsed = parse_query(sql)
        dataset = self._resolve_table(parsed)
        dataset = self._apply_proxy_udf(parsed, dataset)

        if parsed.kind == QueryKind.JOINT:
            joint_query = parsed.to_joint_query(stage_budget=stage_budget)
            selector = JointSelector(joint_query, method=method or "is", **selector_kwargs)
            result = selector.select(dataset, seed=seed)
            return QueryExecution(
                parsed=parsed,
                result=result,
                dataset=dataset,
                method=f"joint-{method or 'is'}",
            )

        query = parsed.to_approx_query()
        if method is None:
            selector = default_selector(query, **selector_kwargs)
        else:
            selector = make_selector(method, query, **selector_kwargs)
        oracle = self._build_oracle(parsed, dataset, query.budget)
        context = self._context if (reuse_samples and oracle is None) else None
        result = selector.select(dataset, seed=seed, oracle=oracle, context=context)
        return QueryExecution(
            parsed=parsed, result=result, dataset=dataset, method=selector.name
        )

    # -- resolution helpers ---------------------------------------------------

    def _resolve_table(self, parsed: ParsedQuery) -> Dataset:
        try:
            return self._tables[parsed.table]
        except KeyError:
            raise KeyError(
                f"unknown table {parsed.table!r}; registered: {', '.join(self.tables()) or '-'}"
            ) from None

    def _apply_proxy_udf(self, parsed: ParsedQuery, dataset: Dataset) -> Dataset:
        udf = self._proxy_udfs.get(parsed.proxy.name.upper())
        if udf is None:
            return dataset
        # Cache the derived dataset per (table, UDF): re-deriving every
        # execute() would discard the cached sorted-score statistics and
        # give each query a fresh fingerprint, defeating sample reuse.
        key = (parsed.table, parsed.proxy.name.upper())
        derived = self._derived.get(key)
        if derived is None:
            scores = np.asarray(udf(dataset), dtype=float)
            derived = dataset.with_scores(scores, name=f"{dataset.name}|{parsed.proxy.name}")
            self._derived[key] = derived
        return derived

    def _build_oracle(
        self, parsed: ParsedQuery, dataset: Dataset, budget: int | None
    ) -> BudgetedOracle | None:
        udf = self._oracle_udfs.get(parsed.predicate.name.upper())
        if udf is None:
            return None  # the selector builds one from dataset labels
        def lookup(indices: np.ndarray) -> np.ndarray:
            return np.asarray(udf(dataset, indices))

        return BudgetedOracle(lookup, budget=budget)
