"""Execution engine for SUPG dialect queries.

Ties the query layer to the core selectors: tables are registered
datasets, and the WHERE / USING clauses name user-defined functions
(callbacks, per Section 4.1 of the paper) that produce oracle labels
and proxy scores.  When no UDF is registered under a clause's name the
engine falls back to the dataset's built-in ground truth and proxy
scores, which is the common case for the bundled workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.joint import JointSelector
from ..core.registry import default_selector, make_selector
from ..core.types import SelectionResult
from ..datasets import Dataset
from ..oracle import BudgetedOracle
from .ast import ParsedQuery, QueryKind
from .parser import parse_query

__all__ = ["SupgEngine", "QueryExecution"]

#: An oracle UDF maps (dataset, record indices) to 0/1 labels.
OracleUdf = Callable[[Dataset, np.ndarray], np.ndarray]

#: A proxy UDF maps a dataset to a full vector of proxy scores.
ProxyUdf = Callable[[Dataset], np.ndarray]


@dataclass(frozen=True)
class QueryExecution:
    """The outcome of one engine run.

    Attributes:
        parsed: the query AST.
        result: the selection result (indices, threshold, oracle usage).
        dataset: the table the query ran against (post proxy-UDF).
        method: registry name of the selector that executed the query.
    """

    parsed: ParsedQuery
    result: SelectionResult
    dataset: Dataset
    method: str


class SupgEngine:
    """Registry of tables and UDFs plus a query executor.

    Example::

        engine = SupgEngine()
        engine.register_table("hummingbird_video", dataset)
        execution = engine.execute('''
            SELECT * FROM hummingbird_video
            WHERE HUMMINGBIRD_PRESENT(frame) = True
            ORACLE LIMIT 1000
            USING DNN_CLASSIFIER(frame) = "hummingbird"
            RECALL TARGET 95%
            WITH PROBABILITY 95%
        ''', seed=0)
    """

    def __init__(self) -> None:
        self._tables: dict[str, Dataset] = {}
        self._oracle_udfs: dict[str, OracleUdf] = {}
        self._proxy_udfs: dict[str, ProxyUdf] = {}

    # -- registration ----------------------------------------------------------

    def register_table(self, name: str, dataset: Dataset) -> None:
        """Register a dataset under a table name."""
        if not name:
            raise ValueError("table name must be non-empty")
        self._tables[name] = dataset

    def register_oracle_udf(self, name: str, fn: OracleUdf) -> None:
        """Register a WHERE-clause oracle predicate by UDF name."""
        self._oracle_udfs[name.upper()] = fn

    def register_proxy_udf(self, name: str, fn: ProxyUdf) -> None:
        """Register a USING-clause proxy scorer by UDF name."""
        self._proxy_udfs[name.upper()] = fn

    def tables(self) -> tuple[str, ...]:
        """Registered table names."""
        return tuple(sorted(self._tables))

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        sql: str,
        seed: int | np.random.Generator = 0,
        method: str | None = None,
        stage_budget: int = 1000,
        **selector_kwargs,
    ) -> QueryExecution:
        """Parse and run a SUPG dialect query.

        Args:
            sql: query text (Figure 3 or Figure 14 shape).
            seed: randomness for sampling.
            method: selector registry name; defaults to the SUPG method
                for the query type (IS-CI-R / two-stage IS-CI-P).  For
                joint queries, one of ``"is"``, ``"uniform"``, ``"noci"``.
            stage_budget: stage-1/2 budget for joint-target queries.
            **selector_kwargs: forwarded to the selector constructor.

        Returns:
            A :class:`QueryExecution`.

        Raises:
            KeyError: unknown table.
            repro.query.parser.QuerySyntaxError: malformed query text.
        """
        parsed = parse_query(sql)
        dataset = self._resolve_table(parsed)
        dataset = self._apply_proxy_udf(parsed, dataset)

        if parsed.kind == QueryKind.JOINT:
            joint_query = parsed.to_joint_query(stage_budget=stage_budget)
            selector = JointSelector(joint_query, method=method or "is", **selector_kwargs)
            result = selector.select(dataset, seed=seed)
            return QueryExecution(
                parsed=parsed,
                result=result,
                dataset=dataset,
                method=f"joint-{method or 'is'}",
            )

        query = parsed.to_approx_query()
        if method is None:
            selector = default_selector(query, **selector_kwargs)
        else:
            selector = make_selector(method, query, **selector_kwargs)
        oracle = self._build_oracle(parsed, dataset, query.budget)
        result = selector.select(dataset, seed=seed, oracle=oracle)
        return QueryExecution(
            parsed=parsed, result=result, dataset=dataset, method=selector.name
        )

    # -- resolution helpers ---------------------------------------------------

    def _resolve_table(self, parsed: ParsedQuery) -> Dataset:
        try:
            return self._tables[parsed.table]
        except KeyError:
            raise KeyError(
                f"unknown table {parsed.table!r}; registered: {', '.join(self.tables()) or '-'}"
            ) from None

    def _apply_proxy_udf(self, parsed: ParsedQuery, dataset: Dataset) -> Dataset:
        udf = self._proxy_udfs.get(parsed.proxy.name.upper())
        if udf is None:
            return dataset
        scores = np.asarray(udf(dataset), dtype=float)
        return dataset.with_scores(scores, name=f"{dataset.name}|{parsed.proxy.name}")

    def _build_oracle(
        self, parsed: ParsedQuery, dataset: Dataset, budget: int | None
    ) -> BudgetedOracle | None:
        udf = self._oracle_udfs.get(parsed.predicate.name.upper())
        if udf is None:
            return None  # the selector builds one from dataset labels
        def lookup(indices: np.ndarray) -> np.ndarray:
            return np.asarray(udf(dataset, indices))

        return BudgetedOracle(lookup, budget=budget)
