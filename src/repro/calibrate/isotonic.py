"""Isotonic regression: non-parametric monotone calibration.

Fits the least-squares *monotone non-decreasing* map from proxy scores
to match probabilities via the Pool Adjacent Violators Algorithm
(PAVA), in pure numpy.  Isotonic calibration is the natural companion
to SUPG's threshold selection: Section 4.2 of the paper argues
thresholding is optimal precisely when the true match probability is
monotone in the proxy score, and the isotonic fit is the maximum-
likelihood monotone estimate of that relationship.

Compared to Platt scaling it needs more pilot labels (it fits a step
function, not 2 parameters) but makes no sigmoid shape assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IsotonicCalibrator", "pava"]


def pava(values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Pool Adjacent Violators: the non-decreasing least-squares fit.

    Args:
        values: observations ordered by the predictor.
        weights: optional positive observation weights.

    Returns:
        The fitted non-decreasing sequence (same shape as ``values``).
    """
    y = np.asarray(values, dtype=float)
    if y.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {y.shape}")
    if y.size == 0:
        return y.copy()
    w = np.ones_like(y) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != y.shape:
        raise ValueError("weights must align with values")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")

    # Blocks are maintained as (mean, weight, count) and merged backward
    # whenever a new block violates monotonicity.
    means: list[float] = []
    block_weights: list[float] = []
    counts: list[int] = []
    for value, weight in zip(y, w):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            total = block_weights[-2] + block_weights[-1]
            merged = (means[-2] * block_weights[-2] + means[-1] * block_weights[-1]) / total
            means[-2:] = [merged]
            block_weights[-2:] = [total]
            counts[-2:] = [counts[-2] + counts[-1]]
    return np.repeat(means, counts)


@dataclass
class IsotonicCalibrator:
    """Monotone score-to-probability calibration via PAVA.

    Predictions for scores outside the pilot's range are clamped to the
    boundary fit values; in-range scores are linearly interpolated
    between the pilot's fitted points.
    """

    x_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    y_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        """Fit the monotone map on a labeled pilot sample."""
        a = np.asarray(scores, dtype=float)
        y = np.asarray(labels, dtype=float)
        if a.shape != y.shape or a.ndim != 1 or a.size == 0:
            raise ValueError("scores and labels must be aligned non-empty 1-D arrays")
        order = np.argsort(a, kind="stable")
        fitted = pava(y[order])
        # Collapse duplicate scores to a single (x, mean-y) knot so the
        # interpolator is a function.
        xs = a[order]
        unique_x, first = np.unique(xs, return_index=True)
        knots = []
        for i, start in enumerate(first):
            end = first[i + 1] if i + 1 < len(first) else xs.size
            knots.append(fitted[start:end].mean())
        self.x_ = unique_x
        self.y_ = np.asarray(knots)
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores through the fitted monotone function."""
        if self.x_ is None:
            raise RuntimeError("IsotonicCalibrator.transform called before fit")
        a = np.asarray(scores, dtype=float)
        return np.clip(np.interp(a, self.x_, self.y_), 0.0, 1.0)

    def fit_transform(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit on the pilot and return its calibrated scores."""
        return self.fit(scores, labels).transform(scores)
