"""Platt scaling: parametric (sigmoid) probability calibration.

SUPG's importance weights are variance-optimal when the proxy is
*calibrated*: ``Pr[O(x)=1 | A(x)=a] = a`` (Theorem 1 of the paper).
Real proxies rarely are, so recalibrating scores on a small labeled
pilot sample before running SUPG improves sample efficiency without
touching validity (which never depends on calibration).

Platt scaling fits ``p(a) = sigmoid(w * logit(a) + b)`` by
Newton-Raphson on the logistic log-likelihood — two parameters, so a
few hundred pilot labels suffice.  Implemented in pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlattScaler"]

_EPS = 1e-7


def _logit(p: np.ndarray) -> np.ndarray:
    clipped = np.clip(p, _EPS, 1.0 - _EPS)
    return np.log(clipped / (1.0 - clipped))


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


@dataclass
class PlattScaler:
    """Two-parameter sigmoid recalibration of proxy scores.

    Attributes:
        max_iter: Newton iteration cap.
        tol: convergence threshold on the parameter step.
        l2: small ridge term keeping the Hessian invertible on
            degenerate pilots (e.g. perfectly separable scores).
    """

    max_iter: int = 100
    tol: float = 1e-8
    l2: float = 1e-6
    weight_: float | None = None
    bias_: float | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattScaler":
        """Fit the scaler on a labeled pilot sample.

        Args:
            scores: raw proxy scores in [0, 1].
            labels: 0/1 pilot labels aligned with ``scores``.

        Raises:
            ValueError: misaligned inputs or an empty pilot.
        """
        a = np.asarray(scores, dtype=float)
        y = np.asarray(labels, dtype=float)
        if a.shape != y.shape or a.ndim != 1 or a.size == 0:
            raise ValueError("scores and labels must be aligned non-empty 1-D arrays")

        x = _logit(a)
        w, b = 1.0, 0.0
        for _ in range(self.max_iter):
            z = w * x + b
            p = _sigmoid(z)
            # Gradient and Hessian of the negative log-likelihood.
            residual = p - y
            grad_w = float(np.dot(residual, x)) + self.l2 * w
            grad_b = float(residual.sum()) + self.l2 * b
            s = p * (1.0 - p)
            h_ww = float(np.dot(s, x * x)) + self.l2
            h_wb = float(np.dot(s, x))
            h_bb = float(s.sum()) + self.l2
            det = h_ww * h_bb - h_wb * h_wb
            if det <= 0:
                break
            step_w = (h_bb * grad_w - h_wb * grad_b) / det
            step_b = (h_ww * grad_b - h_wb * grad_w) / det
            w -= step_w
            b -= step_b
            if abs(step_w) + abs(step_b) < self.tol:
                break
        self.weight_ = w
        self.bias_ = b
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if self.weight_ is None or self.bias_ is None:
            raise RuntimeError("PlattScaler.transform called before fit")
        a = np.asarray(scores, dtype=float)
        return _sigmoid(self.weight_ * _logit(a) + self.bias_)

    def fit_transform(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit on the pilot and return its calibrated scores."""
        return self.fit(scores, labels).transform(scores)
