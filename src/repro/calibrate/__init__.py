"""Proxy-score calibration substrate.

SUPG's result *validity* never depends on proxy calibration, but its
sample efficiency does (Theorem 1 assumes a calibrated proxy).  This
subpackage provides pilot-sample recalibration — parametric
(:class:`PlattScaler`) and non-parametric monotone
(:class:`IsotonicCalibrator`) — plus a convenience wrapper that spends
a slice of the oracle budget on a calibration pilot.
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..oracle import BudgetedOracle
from ..sampling import uniform_sample
from .isotonic import IsotonicCalibrator, pava
from .platt import PlattScaler

__all__ = ["PlattScaler", "IsotonicCalibrator", "pava", "calibrate_dataset"]


def calibrate_dataset(
    dataset: Dataset,
    oracle: BudgetedOracle,
    pilot_size: int,
    rng: np.random.Generator,
    method: str = "platt",
    floor: float = 1e-3,
) -> Dataset:
    """Recalibrate a workload's proxy scores using a labeled pilot.

    Draws a uniform pilot of ``pilot_size`` records, labels it through
    the (budget-enforcing) oracle, fits the requested calibrator, and
    returns a dataset whose scores are the calibrated probabilities.
    The pilot labels stay cached in the oracle, so a subsequent SUPG
    run over the same oracle does not pay for them twice.

    Why recalibrate at all: a badly *under-confident* proxy makes the
    sqrt importance weights over-aggressive, biasing the sampled
    positives toward the top of the score range and silently degrading
    the finite-sample recall guarantee (measured in
    ``benchmarks/test_ablation_calibration.py``).  Recalibration
    restores the calibrated-proxy regime Theorem 1 assumes.

    Method choice: Platt (the default) is strictly monotone, so it
    preserves the full score ordering.  Isotonic fits a step function
    whose lowest plateau can collapse to exactly 0, erasing ordering
    information in the tail a small pilot never saw — fine for quality
    diagnostics, riskier as the sampling score for RT queries; prefer
    it only with large pilots.  ``floor`` keeps every record minimally
    sampleable either way.

    Args:
        dataset: the workload to recalibrate.
        oracle: budgeted oracle; the pilot consumes part of its budget.
        pilot_size: number of pilot labels.
        rng: randomness for the pilot draw.
        method: ``"platt"`` (default) or ``"isotonic"``.
        floor: lower clamp applied to the calibrated scores.

    Returns:
        A new dataset with calibrated proxy scores (labels unchanged).
    """
    if method == "isotonic":
        calibrator = IsotonicCalibrator()
    elif method == "platt":
        calibrator = PlattScaler()
    else:
        raise ValueError(f"unknown calibration method {method!r}; use 'platt' or 'isotonic'")
    if not (0.0 <= floor < 1.0):
        raise ValueError(f"floor must be in [0, 1), got {floor}")

    pilot = uniform_sample(dataset.size, pilot_size, rng, replace=False)
    labels = oracle.query(pilot)
    calibrator.fit(dataset.proxy_scores[pilot], labels)
    calibrated = np.clip(calibrator.transform(dataset.proxy_scores), floor, 1.0)
    return dataset.with_scores(calibrated, name=f"{dataset.name}|{method}")
