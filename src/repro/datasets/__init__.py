"""Dataset substrate: workload container, synthetics, simulated
real-world datasets (Table 2), and drift generators (Table 3)."""

from __future__ import annotations

from .base import Dataset
from .drift import (
    DRIFT_PAIRS,
    apply_fog,
    make_beta_drift_pair,
    make_drift_pair,
    make_imagenet_drift_pair,
    make_night_street_drift_pair,
)
from .realworld import (
    IMAGENET,
    NIGHT_STREET,
    ONTONOTES,
    REAL_WORKLOADS,
    TACRED,
    WorkloadSpec,
    make_imagenet,
    make_night_street,
    make_ontonotes,
    make_tacred,
    make_workload,
)
from .registry import EVALUATION_DATASETS, available_datasets, load_dataset
from .synthetic import DEFAULT_BETA_SIZE, add_proxy_noise, make_beta_dataset

__all__ = [
    "Dataset",
    "make_beta_dataset",
    "add_proxy_noise",
    "DEFAULT_BETA_SIZE",
    "WorkloadSpec",
    "IMAGENET",
    "NIGHT_STREET",
    "ONTONOTES",
    "TACRED",
    "REAL_WORKLOADS",
    "make_workload",
    "make_imagenet",
    "make_night_street",
    "make_ontonotes",
    "make_tacred",
    "apply_fog",
    "make_drift_pair",
    "make_imagenet_drift_pair",
    "make_night_street_drift_pair",
    "make_beta_drift_pair",
    "DRIFT_PAIRS",
    "available_datasets",
    "load_dataset",
    "EVALUATION_DATASETS",
]
