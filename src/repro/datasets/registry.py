"""Name-based dataset registry used by experiments and benchmarks.

Maps the dataset names from Table 2 of the paper to generator
functions, so experiment drivers can be written against workload names
("imagenet", "beta(0.01,1)", ...) instead of constructors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import Dataset
from .realworld import make_imagenet, make_night_street, make_ontonotes, make_tacred
from .synthetic import make_beta_dataset

__all__ = ["available_datasets", "load_dataset", "EVALUATION_DATASETS"]

_Factory = Callable[..., Dataset]


def _beta_factory(alpha: float, beta: float) -> _Factory:
    def make(size: int | None = None, seed: int | np.random.Generator = 0) -> Dataset:
        kwargs = {"seed": seed}
        if size is not None:
            kwargs["size"] = size
        return make_beta_dataset(alpha, beta, **kwargs)

    return make


_FACTORIES: dict[str, _Factory] = {
    "imagenet": make_imagenet,
    "night-street": make_night_street,
    "ontonotes": make_ontonotes,
    "tacred": make_tacred,
    "beta(0.01,1)": _beta_factory(0.01, 1.0),
    "beta(0.01,2)": _beta_factory(0.01, 2.0),
}

#: The six workloads of the paper's evaluation (Table 2), in table order.
EVALUATION_DATASETS: tuple[str, ...] = (
    "imagenet",
    "night-street",
    "ontonotes",
    "tacred",
    "beta(0.01,1)",
    "beta(0.01,2)",
)


def available_datasets() -> tuple[str, ...]:
    """Names of all registered workloads."""
    return tuple(sorted(_FACTORIES))


def load_dataset(
    name: str,
    size: int | None = None,
    seed: int | np.random.Generator = 0,
) -> Dataset:
    """Materialize a workload by name.

    Args:
        name: one of :func:`available_datasets`.
        size: optional record-count override (smaller for tests).
        seed: integer seed or generator.

    Raises:
        KeyError: for unknown workload names.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None
    return factory(size=size, seed=seed)
