"""Simulated real-world workloads (Table 2, rows 1-4 of the paper).

The paper evaluates on two image datasets (ImageNet hummingbirds,
night-street cars) and two text datasets (OntoNotes city relations,
TACRED employee relations).  The raw data, human labels, and DNN proxy
models are proprietary or too heavy for this environment, so we simulate
each workload *at the proxy-score level* — the only interface the SUPG
algorithms observe (see DESIGN.md, "Substitutions").

Each simulated workload fixes the exact number of positives from
Table 2 and draws proxy scores class-conditionally:

    A(x) | O(x)=1  ~  Beta(pos_alpha, pos_beta)            (mass near 1)
    A(x) | O(x)=0  ~  (1-h) Beta(neg_alpha, neg_beta)      (mass near 0)
                      +  h  Beta(hard_alpha, hard_beta)    (hard negatives)

The small *hard-negative* component models the confident false
positives every real proxy produces (e.g. other birds scored as
hummingbirds); without it no threshold rule could ever be
precision-unsafe, contradicting the failure behavior the paper
documents for naive baselines (Figures 1 and 5).  The bulk negative
component stays sharply concentrated near zero, matching the paper's
observation that these proxies are well calibrated and that importance
sampling obtains "many positive draws".

The induced ``Pr[O(x)=1 | A(x)=a]`` is monotone increasing in ``a``
except for the (measure-tiny) hard-negative overlap — consistent with
the approximate monotonicity Section 4.2 of the paper observes
empirically for real proxies.  Component parameters are chosen per the
paper's qualitative description of each proxy: the ImageNet ResNet-50
proxy is sharp and highly calibrated, the night-street proxy good but
noisier, the OntoNotes LSTM baseline weakest, and the TACRED SpanBERT
proxy strong.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Dataset

__all__ = [
    "WorkloadSpec",
    "IMAGENET",
    "NIGHT_STREET",
    "ONTONOTES",
    "TACRED",
    "REAL_WORKLOADS",
    "make_workload",
    "make_imagenet",
    "make_night_street",
    "make_ontonotes",
    "make_tacred",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Generative recipe for one simulated real-world workload.

    Attributes:
        name: workload name matching the paper's Table 2.
        size: number of records at paper scale.
        positive_count: exact number of matching records at paper scale.
        pos_alpha, pos_beta: Beta parameters of the positive-class proxy
            score distribution.
        neg_alpha, neg_beta: Beta parameters of the bulk negative-class
            proxy score distribution.
        oracle: description of the paper's oracle (provenance only).
        proxy: description of the paper's proxy model (provenance only).
        task: one-line task description from Table 2.
        hard_neg_fraction: fraction of negatives drawn from the
            hard-negative (confident false positive) component.
        hard_alpha, hard_beta: Beta parameters of that component.
    """

    name: str
    size: int
    positive_count: int
    pos_alpha: float
    pos_beta: float
    neg_alpha: float
    neg_beta: float
    oracle: str
    proxy: str
    task: str
    hard_neg_fraction: float = 0.0
    hard_alpha: float = 2.0
    hard_beta: float = 1.5

    @property
    def positive_rate(self) -> float:
        """Designed true-positive rate (Table 2's TPR column)."""
        return self.positive_count / self.size


#: ImageNet validation set: 50 hummingbirds in 50,000 images (0.1% TPR).
#: The ResNet-50 proxy is described as sharp and highly calibrated: the
#: paper notes this workload is "especially favorable" to importance
#: sampling because the proxy yields "many positive draws".  The very
#: small neg_alpha concentrates negative scores near zero, so the
#: sqrt-weight mass on the 49,950 negatives stays comparable to that of
#: the 50 positives and weighted sampling reaches most true positives.
IMAGENET = WorkloadSpec(
    name="imagenet",
    size=50_000,
    positive_count=50,
    pos_alpha=4.0,
    pos_beta=0.7,
    neg_alpha=0.01,
    neg_beta=5.0,
    oracle="Human labels",
    proxy="ResNet-50",
    task="Finding hummingbirds in the ImageNet validation set",
    hard_neg_fraction=0.002,
    hard_alpha=2.0,
    hard_beta=1.2,
)

#: night-street video, resampled to 4% car frames.  Oracle is Mask R-CNN.
NIGHT_STREET = WorkloadSpec(
    name="night-street",
    size=100_000,
    positive_count=4_000,
    pos_alpha=3.0,
    pos_beta=1.2,
    neg_alpha=0.25,
    neg_beta=6.0,
    oracle="Mask R-CNN",
    proxy="ResNet-50",
    task="Finding cars in the night-street video",
    hard_neg_fraction=0.01,
    hard_alpha=2.0,
    hard_beta=1.5,
)

#: OntoNotes fine-grained entity relations, 2.5% city relations.  The
#: LSTM baseline proxy is the weakest of the four.
ONTONOTES = WorkloadSpec(
    name="ontonotes",
    size=40_000,
    positive_count=1_000,
    pos_alpha=1.8,
    pos_beta=1.0,
    neg_alpha=0.35,
    neg_beta=5.0,
    oracle="Human labels",
    proxy="LSTM",
    task="Finding city relationships",
    hard_neg_fraction=0.015,
    hard_alpha=1.5,
    hard_beta=1.5,
)

#: TACRED relation extraction, 2.4% employee relations.  SpanBERT is a
#: strong, state-of-the-art proxy.
TACRED = WorkloadSpec(
    name="tacred",
    size=42_000,
    positive_count=1_008,
    pos_alpha=4.0,
    pos_beta=1.0,
    neg_alpha=0.2,
    neg_beta=6.0,
    oracle="Human labels",
    proxy="SpanBERT",
    task="Finding employees relationships",
    hard_neg_fraction=0.008,
    hard_alpha=2.0,
    hard_beta=1.5,
)

#: All four simulated real-world workloads, keyed by name.
REAL_WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (IMAGENET, NIGHT_STREET, ONTONOTES, TACRED)
}


def make_workload(
    spec: WorkloadSpec,
    size: int | None = None,
    seed: int | np.random.Generator = 0,
) -> Dataset:
    """Materialize one simulated workload.

    Args:
        spec: the workload recipe.
        size: optional override of the record count; the positive count
            is scaled proportionally (at least one positive is kept so
            the workload remains non-degenerate).  Tests use small sizes.
        seed: integer seed or generator.

    Returns:
        A dataset with exactly the designed number of positives, with
        records shuffled so indices carry no class information.
    """
    rng = np.random.default_rng(seed)
    n = spec.size if size is None else size
    if n <= 0:
        raise ValueError(f"size must be positive, got {n}")
    n_pos = max(1, round(n * spec.positive_rate))
    if n_pos > n:
        raise ValueError(f"positive count {n_pos} exceeds dataset size {n}")
    n_neg = n - n_pos

    pos_scores = rng.beta(spec.pos_alpha, spec.pos_beta, size=n_pos)
    neg_scores = rng.beta(spec.neg_alpha, spec.neg_beta, size=n_neg)
    if spec.hard_neg_fraction > 0.0 and n_neg > 0:
        hard = rng.random(n_neg) < spec.hard_neg_fraction
        n_hard = int(hard.sum())
        if n_hard:
            neg_scores[hard] = rng.beta(spec.hard_alpha, spec.hard_beta, size=n_hard)
    scores = np.concatenate([pos_scores, neg_scores])
    labels = np.concatenate([np.ones(n_pos, dtype=np.int8), np.zeros(n_neg, dtype=np.int8)])

    order = rng.permutation(n)
    return Dataset(
        proxy_scores=scores[order],
        labels=labels[order],
        name=spec.name,
        metadata={
            "generator": "realworld",
            "spec": spec.name,
            "oracle": spec.oracle,
            "proxy": spec.proxy,
            "task": spec.task,
            "size": n,
            "positive_count": n_pos,
        },
    )


def make_imagenet(size: int | None = None, seed: int | np.random.Generator = 0) -> Dataset:
    """Simulated ImageNet hummingbird workload (0.1% TPR)."""
    return make_workload(IMAGENET, size=size, seed=seed)


def make_night_street(size: int | None = None, seed: int | np.random.Generator = 0) -> Dataset:
    """Simulated night-street car workload (4% TPR)."""
    return make_workload(NIGHT_STREET, size=size, seed=seed)


def make_ontonotes(size: int | None = None, seed: int | np.random.Generator = 0) -> Dataset:
    """Simulated OntoNotes city-relation workload (2.5% TPR)."""
    return make_workload(ONTONOTES, size=size, seed=seed)


def make_tacred(size: int | None = None, seed: int | np.random.Generator = 0) -> Dataset:
    """Simulated TACRED employee-relation workload (2.4% TPR)."""
    return make_workload(TACRED, size=size, seed=seed)
