"""Dataset container shared by all workloads.

SUPG's algorithms interact with data exclusively through two arrays: the
proxy scores ``A(x)`` (cheap, precomputed over the whole dataset, per
Section 4.1 of the paper) and the oracle labels ``O(x)`` (expensive,
revealed only through a budgeted oracle).  A :class:`Dataset` stores
both; evaluation code may read ``labels`` directly to score results,
while algorithm code must only touch labels through
:class:`repro.oracle.BudgetedOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """Records with proxy scores and ground-truth oracle labels.

    Attributes:
        proxy_scores: array of proxy confidences ``A(x)`` in [0, 1], one
            per record.
        labels: array of ground-truth oracle bits ``O(x)`` in {0, 1},
            aligned with ``proxy_scores``.
        name: human-readable workload name (e.g. ``"imagenet"``).
        metadata: free-form provenance (generator parameters, drift
            descriptions) recorded so experiments are self-describing.
    """

    proxy_scores: np.ndarray
    labels: np.ndarray
    name: str = "dataset"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        scores = np.asarray(self.proxy_scores, dtype=float)
        labels = np.asarray(self.labels)
        if scores.ndim != 1:
            raise ValueError(f"proxy_scores must be 1-D, got shape {scores.shape}")
        if scores.shape != labels.shape:
            raise ValueError(
                f"proxy_scores and labels must be aligned, got {scores.shape} vs {labels.shape}"
            )
        if scores.size == 0:
            raise ValueError("a dataset must contain at least one record")
        if np.any(scores < 0) or np.any(scores > 1):
            raise ValueError("proxy scores must lie in [0, 1]")
        if not np.all(np.isin(labels, (0, 1))):
            raise ValueError("labels must be binary (0/1)")
        # Normalize dtypes once; frozen dataclass requires object.__setattr__.
        object.__setattr__(self, "proxy_scores", scores)
        object.__setattr__(self, "labels", labels.astype(np.int8))

    def __len__(self) -> int:
        return int(self.proxy_scores.size)

    @property
    def size(self) -> int:
        """Number of records ``|D|``."""
        return len(self)

    @property
    def positive_count(self) -> int:
        """Number of records matching the oracle predicate ``|O+|``."""
        return int(self.labels.sum())

    @property
    def positive_rate(self) -> float:
        """True-positive rate of the workload (Table 2's TPR column)."""
        return self.positive_count / self.size

    @property
    def positive_indices(self) -> np.ndarray:
        """Indices of the matching records ``O+``."""
        return np.flatnonzero(self.labels == 1)

    def select_above(self, tau: float) -> np.ndarray:
        """Indices of ``D(tau) = {x : A(x) >= tau}``."""
        return np.flatnonzero(self.proxy_scores >= tau)

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=np.intp)
        return replace(
            self,
            proxy_scores=self.proxy_scores[idx],
            labels=self.labels[idx],
            name=name if name is not None else f"{self.name}[subset]",
        )

    def with_scores(self, proxy_scores: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset with the same labels but replaced proxy scores.

        Used by the drift generators, which corrupt the proxy while
        keeping ground truth fixed.
        """
        return replace(
            self,
            proxy_scores=np.asarray(proxy_scores, dtype=float),
            name=name if name is not None else self.name,
        )

    def describe(self) -> str:
        """One-line summary used by examples and experiment logs."""
        return (
            f"{self.name}: {self.size} records, "
            f"{self.positive_count} positives ({100 * self.positive_rate:.3f}%)"
        )
