"""Dataset container shared by all workloads.

SUPG's algorithms interact with data exclusively through two arrays: the
proxy scores ``A(x)`` (cheap, precomputed over the whole dataset, per
Section 4.1 of the paper) and the oracle labels ``O(x)`` (expensive,
revealed only through a budgeted oracle).  A :class:`Dataset` stores
both; evaluation code may read ``labels`` directly to score results,
while algorithm code must only touch labels through
:class:`repro.oracle.BudgetedOracle`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Mapping

import numpy as np

__all__ = ["Dataset"]

_DEFAULT_BACKEND = None


def _default_backend():
    """Process-wide in-memory backend for datasets with no explicit one.

    Lazy so importing :mod:`repro.datasets` never drags in the core
    package; shared so standalone datasets don't each carry a counters
    dict nobody reads.  Engines attach their own per-session backend via
    :meth:`Dataset.use_backend`.
    """
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        from ..core.stats_backend import InMemoryBackend

        _DEFAULT_BACKEND = InMemoryBackend()
    return _DEFAULT_BACKEND


@dataclass(frozen=True)
class Dataset:
    """Records with proxy scores and ground-truth oracle labels.

    Attributes:
        proxy_scores: array of proxy confidences ``A(x)`` in [0, 1], one
            per record.
        labels: array of ground-truth oracle bits ``O(x)`` in {0, 1},
            aligned with ``proxy_scores``.
        name: human-readable workload name (e.g. ``"imagenet"``).
        metadata: free-form provenance (generator parameters, drift
            descriptions) recorded so experiments are self-describing.
    """

    proxy_scores: np.ndarray
    labels: np.ndarray
    name: str = "dataset"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        scores = np.asarray(self.proxy_scores, dtype=float)
        labels = np.asarray(self.labels)
        if scores.ndim != 1:
            raise ValueError(f"proxy_scores must be 1-D, got shape {scores.shape}")
        if scores.shape != labels.shape:
            raise ValueError(
                f"proxy_scores and labels must be aligned, got {scores.shape} vs {labels.shape}"
            )
        if scores.size == 0:
            raise ValueError("a dataset must contain at least one record")
        if np.isnan(scores).any():
            # NaN compares false against every threshold, so it would be
            # *silently excluded* by the dense ``>= tau`` path while the
            # sorted-order (zone-map) path would place it at the end of
            # the sort and include it — a bit-identity break.  Reject it
            # loudly instead of choosing either behavior.
            raise ValueError(
                "proxy scores must not contain NaN; recompute or impute the "
                "proxy before constructing a Dataset"
            )
        if np.any(scores < 0) or np.any(scores > 1):
            raise ValueError("proxy scores must lie in [0, 1]")
        if not np.all(np.isin(labels, (0, 1))):
            raise ValueError("labels must be binary (0/1)")
        # Normalize dtypes once; frozen dataclass requires object.__setattr__.
        object.__setattr__(self, "proxy_scores", scores)
        object.__setattr__(self, "labels", labels.astype(np.int8))

    def __len__(self) -> int:
        return int(self.proxy_scores.size)

    @property
    def size(self) -> int:
        """Number of records ``|D|``."""
        return len(self)

    @cached_property
    def positive_count(self) -> int:
        """Number of records matching the oracle predicate ``|O+|``.

        Cached: the trial runner passes it to every evaluation, which
        would otherwise re-sum the full label array once per trial.
        """
        return int(self.labels.sum())

    @property
    def positive_rate(self) -> float:
        """True-positive rate of the workload (Table 2's TPR column)."""
        return self.positive_count / self.size

    @property
    def positive_indices(self) -> np.ndarray:
        """Indices of the matching records ``O+``."""
        return np.flatnonzero(self.labels == 1)

    # ------------------------------------------------------------------
    # Cached statistics.  Every selector trial needs the same derived
    # arrays — the sorted proxy scores (Algorithm 5's stage-1 cut) and
    # the defensive importance weights (Algorithms 4-5) — so a Dataset
    # computes each once and reuses it across the 100+ trials of an
    # experiment cell.  *What* each statistic is lives here; *where its
    # bytes live* is the attached :class:`~repro.core.stats_backend.
    # StatisticsBackend` — RAM ndarrays (memory backend) or read-only
    # ``np.memmap`` windows over fingerprint-keyed store files (disk
    # backend), bit-identical either way.  The memoized views live in
    # the instance ``__dict__`` (``cached_property`` bypasses the
    # frozen-dataclass setattr), and ``subset``/``with_scores`` build
    # new instances, so derived datasets never see stale statistics.
    # Cached arrays are read-only because they are shared across trials.
    # ------------------------------------------------------------------

    @property
    def stats_backend(self):
        """The provider computing this dataset's derived statistics."""
        backend = self.__dict__.get("_stats_backend")
        if backend is None:
            backend = _default_backend()
            self.__dict__["_stats_backend"] = backend
        return backend

    def use_backend(self, backend) -> "Dataset":
        """Attach a statistics backend; returns ``self`` for chaining.

        Attach before statistics are first touched: views already
        memoized are kept (they are bit-identical by contract), only
        future computations route through the new provider.
        """
        self.__dict__["_stats_backend"] = backend
        return self

    @cached_property
    def fingerprint(self) -> str:
        """Content hash of the workload (scores + labels).

        Keys the shared :class:`~repro.core.pipeline.SampleStore`: two
        dataset objects with identical contents fingerprint equal, so
        labeled samples cached against one are legally served to the
        other.  Computed once per instance (~10 ms per million records)
        and amortized over every store lookup.
        """
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.proxy_scores).tobytes())
        digest.update(np.ascontiguousarray(self.labels).tobytes())
        return digest.hexdigest()

    @cached_property
    def sorted_scores(self) -> np.ndarray:
        """Proxy scores sorted ascending (cached, read-only).

        Served by the attached backend: an ndarray from ``np.sort``
        (memory) or a memmap window over the store's external-sort
        output (disk) — the same values either way.
        """
        return self.stats_backend.sorted_scores(self)

    @property
    def descending_scores(self) -> np.ndarray:
        """Proxy scores sorted descending (a view of :attr:`sorted_scores`)."""
        return self.sorted_scores[::-1]

    @cached_property
    def score_order(self) -> np.ndarray:
        """Stable ``argsort`` of the proxy scores, ascending (cached, read-only).

        Byte-identical to ``np.argsort(kind="stable")`` whichever
        backend serves it — the disk backend's external merge preserves
        tie order exactly.
        """
        return self.stats_backend.score_order(self)

    def prime_zone_map(self, store_dir) -> None:
        """Arm lazy sidecar-backed zone-map priming.

        Records the sidecar directory without touching any statistic:
        the first :attr:`zone_map` access loads the fingerprint-matching
        sidecar if one is warm (no sort performed at all), else builds
        the index and persists it there for the next session.  Called by
        the engine at table registration — which therefore no longer
        forces the O(n log n) sort eagerly.
        """
        self.__dict__.setdefault("_zonemap_sidecar_dir", str(store_dir))

    @cached_property
    def zone_map(self):
        """The dataset's stratified score zone map, or ``None``.

        Built once (like :attr:`sorted_scores`, which it is derived
        from) for datasets of at least
        :data:`~repro.core.zonemap.MIN_INDEXED_SIZE` records; smaller
        datasets return ``None`` and every threshold lookup stays on
        the dense path.  If :meth:`prime_zone_map` armed a sidecar
        directory, a warm sidecar is loaded *before* any sort is forced,
        and a cold build is persisted back.  See
        :mod:`repro.core.zonemap`.
        """
        from ..core.zonemap import MIN_INDEXED_SIZE, ScoreZoneMap

        if self.size < MIN_INDEXED_SIZE:
            return None
        sidecar_dir = self.__dict__.get("_zonemap_sidecar_dir")
        if sidecar_dir is not None:
            zone_map = ScoreZoneMap.load_sidecar(
                sidecar_dir, self.fingerprint, self.size
            )
            if zone_map is not None:
                return zone_map
        zone_map = ScoreZoneMap.build(self.sorted_scores)
        if sidecar_dir is not None:
            zone_map.save_sidecar(sidecar_dir, self.fingerprint)
        return zone_map

    def build_zone_map(self, stratum_size: int | None = None):
        """Force-build (and cache) a zone map, bypassing the size gate.

        Tests and micro-benchmarks use this to exercise the indexed
        path on small datasets; production code reads :attr:`zone_map`.
        """
        from ..core.zonemap import ScoreZoneMap

        zone_map = ScoreZoneMap.build(self.sorted_scores, stratum_size=stratum_size)
        self.__dict__["zone_map"] = zone_map
        return zone_map

    def sampling_weights(self, exponent: float, mixing: float) -> np.ndarray:
        """Defensive importance-sampling weights, cached per ``(exponent, mixing)``.

        Thin memoizing wrapper over the backend's weight provider
        (bitwise :func:`repro.sampling.proxy_sampling_weights`, in RAM
        or streamed to a store file); the IS selectors recompute
        identical weights every trial otherwise, a full O(n) pass over
        the dataset per selector run.
        """
        key = (float(exponent), float(mixing))
        cache: dict[tuple[float, float], np.ndarray]
        cache = self.__dict__.setdefault("_weight_cache", {})
        weights = cache.get(key)
        if weights is None:
            weights = self.stats_backend.sampling_weights(self, key[0], key[1])
            cache[key] = weights
        return weights

    # ------------------------------------------------------------------
    # Shared-memory data plane.  Before a fan-out forks workers, the
    # parent publishes this dataset's big arrays into a
    # :class:`~repro.core.shm.SharedArrayPlane`; the cached statistics
    # then resolve to plane-backed read-only views, so fork workers
    # read truly shared pages instead of copy-on-write ones.  Values
    # are bytewise identical either way — publishing never changes what
    # any selector computes.
    # ------------------------------------------------------------------

    @staticmethod
    def _weight_stat_name(key: tuple[float, float]) -> str:
        return f"weights-{key[0]:g}-{key[1]:g}"

    def publish(self, plane) -> None:
        """Move this dataset's statistics into a shared-array plane.

        Idempotent, and a no-op for a ``pickle``-mode plane.  The
        fingerprint is resolved first (it hashes the original proxy
        scores); ``sorted_scores`` / ``score_order`` are computed here
        if not already cached, and every importance-weight vector
        cached so far moves too — call this *after* a plan prewarm so
        the designs' weights are included.  ``plane.close()`` reverts
        every statistic to a locally owned array.
        """
        if plane is None or plane.mode == "pickle":
            return
        fingerprint = self.fingerprint
        self.__dict__["sorted_scores"] = plane.share(
            fingerprint, "sorted-scores", self.sorted_scores
        )
        self.__dict__["score_order"] = plane.share(
            fingerprint, "score-order", self.score_order
        )
        object.__setattr__(
            self,
            "proxy_scores",
            plane.share(fingerprint, "proxy-scores", self.proxy_scores),
        )
        cache = self.__dict__.setdefault("_weight_cache", {})
        for key in list(cache):
            cache[key] = plane.share(
                fingerprint, self._weight_stat_name(key), cache[key]
            )
        zone_map = self.zone_map
        if zone_map is not None:
            zone_map.publish(plane, fingerprint)
        plane.register_dataset(self)

    def attach(self, plane) -> bool:
        """Resolve cached statistics to a plane's published views.

        The fork path never needs this — workers inherit the published
        views directly — but a dataset object that arrived by pickle
        (same content, fresh caches) can re-attach by fingerprint
        instead of recomputing.  Returns whether anything attached.
        """
        if plane is None or plane.mode == "pickle":
            return False
        fingerprint = self.fingerprint
        attached = False
        for attr, name in (
            ("sorted_scores", "sorted-scores"),
            ("score_order", "score-order"),
        ):
            view = plane.view(fingerprint, name)
            if view is not None:
                self.__dict__[attr] = view
                attached = True
        view = plane.view(fingerprint, "proxy-scores")
        if view is not None:
            object.__setattr__(self, "proxy_scores", view)
            attached = True
        cache = self.__dict__.setdefault("_weight_cache", {})
        for key in list(cache):
            view = plane.view(fingerprint, self._weight_stat_name(key))
            if view is not None:
                cache[key] = view
                attached = True
        from ..core.zonemap import ScoreZoneMap

        zone_map = ScoreZoneMap.attach(plane, fingerprint)
        if zone_map is not None:
            self.__dict__["zone_map"] = zone_map
            attached = True
        if attached:
            plane.register_dataset(self)
        return attached

    def select_above(self, tau: float) -> np.ndarray:
        """Indices of ``D(tau) = {x : A(x) >= tau}``, ascending.

        Large datasets resolve ``tau`` through the zone map — binary
        search over stratum bounds plus at most one boundary stratum,
        then the cumulative tail of :attr:`score_order` — touching
        O(selected) records instead of all n.  Byte-identical to the
        dense ``np.flatnonzero`` scan, which remains the path for small
        datasets and near-total selections.  Under a paged (disk)
        backend the scan goes through
        :meth:`~repro.core.zonemap.ScoreZoneMap.select_above_paged`
        instead — same bytes out, but only the boundary stratum and the
        selected tail are ever faulted in from the statistic files.
        """
        zone_map = self.zone_map
        if zone_map is None:
            return np.flatnonzero(self.proxy_scores >= tau)
        backend = self.stats_backend
        if backend.paged:
            return zone_map.select_above_paged(
                tau, self.sorted_scores, self.score_order, backend.counters
            )
        return zone_map.select_above(
            tau, self.sorted_scores, self.score_order, self.proxy_scores
        )

    def count_above(self, tau: float) -> int:
        """``|D(tau)|`` without materializing it.

        O(log strata) through the zone map's cumulative counts; the
        dense count for unindexed datasets.
        """
        zone_map = self.zone_map
        if zone_map is None:
            return int(np.count_nonzero(self.proxy_scores >= tau))
        return zone_map.count_above(tau, self.sorted_scores)

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=np.intp)
        return replace(
            self,
            proxy_scores=self.proxy_scores[idx],
            labels=self.labels[idx],
            name=name if name is not None else f"{self.name}[subset]",
        )

    def with_scores(self, proxy_scores: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset with the same labels but replaced proxy scores.

        Used by the drift generators, which corrupt the proxy while
        keeping ground truth fixed.
        """
        return replace(
            self,
            proxy_scores=np.asarray(proxy_scores, dtype=float),
            name=name if name is not None else self.name,
        )

    def describe(self) -> str:
        """One-line summary used by examples and experiment logs."""
        return (
            f"{self.name}: {self.size} records, "
            f"{self.positive_count} positives ({100 * self.positive_rate:.3f}%)"
        )
