"""Distribution-shift generators (Table 3 and Section 6.2 of the paper).

The paper's model-drift study trains a fixed threshold on one dataset
and evaluates it on a shifted one:

- ImageNet -> ImageNet-C fog: the same images corrupted by synthetic
  fog, which degrades the proxy's confidence.  We simulate fog as a
  contraction of proxy scores toward the uninformative middle plus
  additive noise, applied to *scores only* (ground truth is unchanged
  because fog does not move hummingbirds).
- night-street -> day 2: a different day of the same camera.  We
  simulate this by regenerating the workload with perturbed
  class-conditional parameters and a fresh seed: same scene statistics,
  slightly different score distributions.
- Beta(0.01, 1) -> Beta(0.01, 2): the paper's synthetic shift,
  reproduced exactly by regenerating with the shifted parameter.

Each generator returns a ``(train, test)`` pair so drift experiments
can fit on ``train`` and evaluate on ``test``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .base import Dataset
from .realworld import NIGHT_STREET, make_imagenet, make_night_street, make_workload
from .synthetic import make_beta_dataset

__all__ = [
    "apply_fog",
    "make_imagenet_drift_pair",
    "make_night_street_drift_pair",
    "make_beta_drift_pair",
    "DRIFT_PAIRS",
    "make_drift_pair",
]


def apply_fog(
    dataset: Dataset,
    severity: float = 0.35,
    noise_std: float = 0.05,
    hallucination_fraction: float = 0.003,
    seed: int | np.random.Generator = 0,
) -> Dataset:
    """Simulate ImageNet-C fog corruption of the proxy scores.

    Fog degrades a classifier in two ways.  Confidences on real content
    move toward uncertainty — modeled as a convex contraction toward
    0.5 plus Gaussian noise, clipped to [0, 1]:

        A'(x) = clip((1 - severity) * A(x) + severity * 0.5 + noise)

    and fog patches get *hallucinated* as objects, producing confident
    false positives — modeled by re-drawing a small fraction of
    negative records' scores from a high Beta(2, 1) component.  The
    hallucinations are what break precision-target thresholds frozen on
    clean data (Table 4 of the paper); the contraction is what breaks
    recall-target ones.  Ground truth is unchanged throughout (fog does
    not move hummingbirds).

    Args:
        dataset: the clean workload.
        severity: contraction strength in [0, 1]; 0 is no corruption.
        noise_std: standard deviation of the additive noise.
        hallucination_fraction: fraction of negatives whose scores are
            re-drawn from the confident-false-positive component.
        seed: integer seed or generator.
    """
    if not (0.0 <= severity <= 1.0):
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    if noise_std < 0:
        raise ValueError(f"noise_std must be non-negative, got {noise_std}")
    if not (0.0 <= hallucination_fraction <= 1.0):
        raise ValueError(
            f"hallucination_fraction must be in [0, 1], got {hallucination_fraction}"
        )
    rng = np.random.default_rng(seed)
    shifted = (1.0 - severity) * dataset.proxy_scores + severity * 0.5
    shifted = shifted + rng.normal(0.0, noise_std, size=dataset.size)
    shifted = np.clip(shifted, 0.0, 1.0)
    if hallucination_fraction > 0.0:
        negatives = dataset.labels == 0
        hallucinated = negatives & (rng.random(dataset.size) < hallucination_fraction)
        n_hall = int(hallucinated.sum())
        if n_hall:
            shifted[hallucinated] = rng.beta(2.0, 1.0, size=n_hall)
    return Dataset(
        proxy_scores=shifted,
        labels=dataset.labels,
        name=f"{dataset.name}-fog",
        metadata={
            **dict(dataset.metadata),
            "drift": "fog",
            "severity": severity,
            "noise_std": noise_std,
            "hallucination_fraction": hallucination_fraction,
        },
    )


def make_imagenet_drift_pair(
    size: int | None = None,
    seed: int = 0,
    severity: float = 0.35,
) -> tuple[Dataset, Dataset]:
    """ImageNet (train) and ImageNet-C fog (test), per Table 3."""
    clean = make_imagenet(size=size, seed=seed)
    foggy = apply_fog(clean, severity=severity, seed=seed + 1)
    return clean, foggy


def make_night_street_drift_pair(
    size: int | None = None,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """night-street day 1 (train) and day 2 (test), per Table 3.

    Day 2 keeps the same scene but perturbs the class-conditional score
    distributions: the proxy is a little less confident on positives and
    slightly more confused by negatives (different lighting/traffic).
    """
    day1 = make_night_street(size=size, seed=seed)
    day2_spec = replace(
        NIGHT_STREET,
        name="night-street-day2",
        pos_alpha=NIGHT_STREET.pos_alpha * 0.8,
        pos_beta=NIGHT_STREET.pos_beta * 1.25,
        neg_alpha=NIGHT_STREET.neg_alpha * 1.4,
        neg_beta=NIGHT_STREET.neg_beta * 0.85,
    )
    day2 = make_workload(day2_spec, size=size, seed=seed + 1)
    return day1, day2


def make_beta_drift_pair(
    size: int = 100_000,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Beta(0.01, 1) (train) shifted to Beta(0.01, 2) (test), per Table 3."""
    train = make_beta_dataset(0.01, 1.0, size=size, seed=seed)
    test = make_beta_dataset(0.01, 2.0, size=size, seed=seed + 1)
    return train, test


#: Drift scenarios keyed by the paper's Table 3 rows.
DRIFT_PAIRS = {
    "imagenet": make_imagenet_drift_pair,
    "night-street": make_night_street_drift_pair,
    "beta": make_beta_drift_pair,
}


def make_drift_pair(name: str, **kwargs) -> tuple[Dataset, Dataset]:
    """Build a (train, test) drift pair by scenario name.

    Args:
        name: one of ``"imagenet"``, ``"night-street"``, ``"beta"``.
        **kwargs: forwarded to the scenario factory (``size``, ``seed``).

    Raises:
        KeyError: for unknown scenario names.
    """
    try:
        factory = DRIFT_PAIRS[name]
    except KeyError:
        raise KeyError(
            f"unknown drift scenario {name!r}; available: {', '.join(sorted(DRIFT_PAIRS))}"
        ) from None
    return factory(**kwargs)
