"""Synthetic Beta datasets (Table 2, rows 5-6 of the paper).

The paper's synthetic workloads draw proxy scores from a Beta
distribution and assign ground-truth labels as independent Bernoulli
trials of those scores:

    A(x) ~ Beta(alpha, beta),    O(x) ~ Bernoulli(A(x)).

By construction the proxy is *perfectly calibrated*:
``Pr[O(x) = 1 | A(x)] = A(x)``.  The paper uses 10**6 records with
``(alpha, beta) in {(0.01, 1), (0.01, 2)}``, giving true-positive rates
of roughly 0.5% and 1% respectively (the mean of Beta(a, b) is
a / (a + b) ~ 1% and 0.5%; note the paper's table lists 0.5% for
Beta(0.01, 1) and 1% for Beta(0.01, 2), with the bulk of the mass very
close to zero either way).

This module also provides the Gaussian-noise corruption used in the
Figure 9 sensitivity study: noise is added to the proxy scores *after*
labels are drawn, so the proxy decalibrates while ground truth stays
fixed.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset

__all__ = [
    "DEFAULT_BETA_SIZE",
    "make_beta_dataset",
    "add_proxy_noise",
]

#: Paper-scale size of the synthetic datasets (10**6 records).  Tests and
#: benchmarks pass smaller sizes explicitly to stay fast.
DEFAULT_BETA_SIZE = 1_000_000


def make_beta_dataset(
    alpha: float,
    beta: float,
    size: int = DEFAULT_BETA_SIZE,
    seed: int | np.random.Generator = 0,
) -> Dataset:
    """Generate a calibrated synthetic workload ``Beta(alpha, beta)``.

    Args:
        alpha: first Beta shape parameter (the paper fixes 0.01).
        beta: second Beta shape parameter (the paper uses 1 and 2, and
            sweeps {0.125, 0.25, 0.5, 1.0, 2.0} in the class-imbalance
            study of Figure 10).
        size: number of records.
        seed: integer seed or an existing generator.

    Returns:
        A :class:`~repro.datasets.base.Dataset` whose metadata records
        the generator parameters.
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError(f"Beta shape parameters must be positive, got ({alpha}, {beta})")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    rng = np.random.default_rng(seed)
    scores = rng.beta(alpha, beta, size=size)
    labels = (rng.random(size) < scores).astype(np.int8)
    return Dataset(
        proxy_scores=scores,
        labels=labels,
        name=f"beta({alpha},{beta})",
        metadata={"generator": "beta", "alpha": alpha, "beta": beta, "size": size},
    )


def add_proxy_noise(
    dataset: Dataset,
    noise_std: float,
    seed: int | np.random.Generator = 0,
) -> Dataset:
    """Corrupt proxy scores with clipped Gaussian noise (Figure 9 setup).

    Ground-truth labels are untouched: the oracle values were generated
    from the *original* probabilities, and only the proxy degrades.  The
    paper expresses noise levels as a percentage of the standard
    deviation of the original scores; pass the absolute ``noise_std``
    here (e.g. ``0.01`` through ``0.04`` for Beta(0.01, 2)).

    Args:
        dataset: workload to corrupt.
        noise_std: standard deviation of the additive Gaussian noise.
        seed: integer seed or generator.

    Returns:
        A new dataset with noisy scores clipped back to [0, 1].
    """
    if noise_std < 0:
        raise ValueError(f"noise_std must be non-negative, got {noise_std}")
    rng = np.random.default_rng(seed)
    noisy = dataset.proxy_scores + rng.normal(0.0, noise_std, size=dataset.size)
    noisy = np.clip(noisy, 0.0, 1.0)
    return Dataset(
        proxy_scores=noisy,
        labels=dataset.labels,
        name=f"{dataset.name}+noise({noise_std})",
        metadata={**dict(dataset.metadata), "noise_std": noise_std},
    )
