"""Regenerate every table and figure of the paper in one run.

Prints the data series behind Figures 1, 5-13 and 15 and Tables 4-5,
at laptop-fast scale by default.  Pass ``--paper-scale`` for the full
dataset sizes and budgets (slower), or name specific experiments:

    python examples/reproduce_paper.py
    python examples/reproduce_paper.py fig7 fig8
    python examples/reproduce_paper.py --paper-scale fig5
"""

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[[], *sorted(ALL_EXPERIMENTS)],
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="full dataset sizes and budgets (slower)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or sorted(ALL_EXPERIMENTS)
    for name in names:
        driver = ALL_EXPERIMENTS[name]
        kwargs = {}
        if args.paper_scale and "paper_scale" in driver.__code__.co_varnames:
            kwargs["paper_scale"] = True
        start = time.perf_counter()
        result = driver(**kwargs)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
