"""Quickstart: run recall- and precision-target SUPG queries.

Builds the simulated ImageNet hummingbird workload (50,000 records,
0.1% positives — Table 2 of the paper), then answers:

1. an RT query — "return at least 90% of all hummingbird frames, with
   probability 95%, using at most 1,000 oracle labels"; and
2. a PT query — "return a set that is at least 90% hummingbirds".

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    dataset = repro.datasets.make_imagenet(seed=0)
    print(dataset.describe())
    print()

    # --- Recall-target query: don't miss hummingbirds -----------------------
    rt_query = repro.ApproxQuery.recall_target(gamma=0.90, delta=0.05, budget=1_000)
    rt_selector = repro.default_selector(rt_query)  # IS-CI-R, the SUPG method
    rt_result = rt_selector.select(dataset, seed=1)
    rt_quality = repro.evaluate_selection(rt_result.indices, dataset.labels)
    print("Recall-target query (gamma=0.90, delta=0.05, budget=1000)")
    print(f"  returned {rt_result.size} records at threshold tau={rt_result.tau:.4f}")
    print(f"  achieved recall    = {rt_quality.recall:.3f}  (guaranteed >= 0.90 w.p. 0.95)")
    print(f"  achieved precision = {rt_quality.precision:.3f}  (the quality metric)")
    print(f"  oracle labels used = {rt_result.oracle_calls} / {rt_query.budget}")
    print()

    # --- Precision-target query: what you return should be right ------------
    pt_query = repro.ApproxQuery.precision_target(gamma=0.90, delta=0.05, budget=1_000)
    pt_selector = repro.default_selector(pt_query)  # two-stage IS-CI-P
    pt_result = pt_selector.select(dataset, seed=2)
    pt_quality = repro.evaluate_selection(pt_result.indices, dataset.labels)
    print("Precision-target query (gamma=0.90, delta=0.05, budget=1000)")
    print(f"  returned {pt_result.size} records at threshold tau={pt_result.tau:.4f}")
    print(f"  achieved precision = {pt_quality.precision:.3f}  (guaranteed >= 0.90 w.p. 0.95)")
    print(f"  achieved recall    = {pt_quality.recall:.3f}  (the quality metric)")
    print(f"  oracle labels used = {pt_result.oracle_calls} / {pt_query.budget}")
    print()

    # --- The same RT query through the SQL dialect ---------------------------
    engine = repro.SupgEngine()
    engine.register_table("hummingbird_video", dataset)
    execution = engine.execute(
        """
        SELECT * FROM hummingbird_video
        WHERE HUMMINGBIRD_PRESENT(frame) = True
        ORACLE LIMIT 1,000
        USING DNN_CLASSIFIER(frame) = "hummingbird"
        RECALL TARGET 90%
        WITH PROBABILITY 95%
        """,
        seed=3,
    )
    sql_quality = repro.evaluate_selection(execution.result.indices, dataset.labels)
    print(f"SQL dialect ({execution.method}): recall={sql_quality.recall:.3f}, "
          f"precision={sql_quality.precision:.3f}, |R|={execution.result.size}")


if __name__ == "__main__":
    main()
