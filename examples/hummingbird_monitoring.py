"""Biological discovery: the Fukami-lab hummingbird scenario (Section 2.1).

The lab needs *at least 90% recall* — missing feeding events corrupts
the downstream micro-ecology analysis — and wants precision as high as
possible (their old motion-detector proxy managed only ~2%).  This
example shows:

1. auditing the DNN proxy's calibration before trusting it (Section
   4.2's bucketed match-rate diagnostic);
2. why the naive threshold rule used by earlier systems is unsafe:
   across repeated runs it frequently misses the recall target;
3. SUPG's IS-CI-R meeting the target with high probability while
   keeping precision far above the motion-detector baseline.

Run:  python examples/hummingbird_monitoring.py
"""

import numpy as np

import repro
from repro.experiments import compare_methods


def main() -> None:
    video = repro.datasets.make_imagenet(seed=42)
    print(f"Workload: {video.describe()}")

    # --- 1. Audit the proxy before trusting it ------------------------------
    # Spend a small pilot of oracle labels on a uniform sample to check
    # that match rates grow with the proxy score.
    rng = np.random.default_rng(0)
    pilot = rng.choice(video.size, size=2_000, replace=False)
    report = repro.calibration_report(
        video.proxy_scores[pilot], video.labels[pilot], num_bins=10
    )
    print("\nProxy calibration audit (pilot of 2,000 labels):")
    print(f"  monotonicity violations : {report.monotonicity_violations}")
    print(f"  expected calibration err: {report.expected_calibration_error:.3f}")
    print(f"  approximately monotone  : {report.is_approximately_monotone()}")

    # --- 2 & 3. Naive vs SUPG at the lab's 90% recall target ----------------
    query = repro.ApproxQuery.recall_target(gamma=0.90, delta=0.05, budget=1_000)
    panel = compare_methods(
        {
            "naive (NoScope-style)": lambda: repro.UniformNoCIRecall(query),
            "U-CI (uniform + CI)": lambda: repro.UniformCIRecall(query),
            "SUPG (IS-CI-R)": lambda: repro.ImportanceCIRecall(query),
        },
        video,
        trials=30,
        base_seed=7,
    )

    print(f"\n30 runs at recall target {query.gamma:.0%}, delta={query.delta}:")
    print(f"{'method':<24}{'min recall':>11}{'median':>9}{'fail rate':>10}{'precision':>11}")
    for label, summary in panel.items():
        print(
            f"{label:<24}{summary.min_target:>11.3f}{summary.median_target:>9.3f}"
            f"{summary.failure_rate:>10.2f}{summary.mean_quality:>11.3f}"
        )

    motion_detector_precision = 0.02  # the lab's previous proxy (Section 2.1)
    supg = panel["SUPG (IS-CI-R)"]
    print(
        f"\nSUPG precision at target recall: {supg.mean_quality:.1%} vs "
        f"{motion_detector_precision:.0%} for the old motion detector "
        f"({supg.mean_quality / motion_detector_precision:.0f}x better), "
        f"with the recall guarantee the naive rule cannot give."
    )


if __name__ == "__main__":
    main()
