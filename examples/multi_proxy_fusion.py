"""Multiple proxy models (the paper's Section 8 future work).

The autonomous-vehicle scenario (Section 2.2) has two detector
modalities: camera-based object detection and LIDAR.  This example
builds both as noisy views of the same ground truth, then compares
SUPG recall-target queries driven by:

- each proxy alone,
- label-free mean fusion, and
- pilot-trained logistic stacking (which also survives one proxy being
  anti-correlated — shown at the end).

Fusion never touches validity (the guarantee holds for any proxy); the
win is result *quality* per oracle label.

Run:  python examples/multi_proxy_fusion.py
"""

import numpy as np

import repro
from repro.core import LogisticFuser, MeanFuser, fuse_proxies
from repro.datasets import Dataset
from repro.oracle import oracle_from_labels


def build_scene(size=80_000, seed=0):
    """Ground truth plus camera and LIDAR proxy scores."""
    rng = np.random.default_rng(seed)
    prob = rng.beta(0.03, 1.2, size=size)          # rare pedestrians
    labels = (rng.random(size) < prob).astype(np.int8)
    camera = np.clip(prob + rng.normal(0, 0.10, size), 0, 1)   # decent
    lidar = np.clip(prob + rng.normal(0, 0.25, size), 0, 1)    # noisier
    dataset = Dataset(proxy_scores=camera, labels=labels, name="av-scene")
    return dataset, camera, lidar


def mean_precision(workload, query, trials=10):
    precisions = []
    for t in range(trials):
        result = repro.ImportanceCIRecall(query).select(workload, seed=100 + t)
        precisions.append(repro.precision(result.indices, workload.labels))
    return float(np.mean(precisions))


def main() -> None:
    dataset, camera, lidar = build_scene()
    print(f"Scene: {dataset.describe()}")
    query = repro.ApproxQuery.recall_target(gamma=0.9, delta=0.05, budget=3_000)

    matrix = np.column_stack([camera, lidar])
    oracle = oracle_from_labels(dataset.labels, budget=None)
    stacked = fuse_proxies(
        dataset, matrix,
        fuser=LogisticFuser(), oracle=oracle,
        pilot_size=1_000, rng=np.random.default_rng(7),
    )
    averaged = fuse_proxies(dataset, matrix, fuser=MeanFuser())

    rows = [
        ("camera only", dataset.with_scores(camera)),
        ("lidar only", dataset.with_scores(lidar)),
        ("mean fusion", averaged),
        ("logistic stacking", stacked),
    ]
    print(f"\nPrecision at recall target {query.gamma:.0%} "
          f"(mean of 10 runs, budget {query.budget}):")
    for label, workload in rows:
        print(f"  {label:<18} {mean_precision(workload, query):.3f}")

    # --- Robustness: one modality goes adversarial ---------------------------
    broken = np.column_stack([camera, 1.0 - lidar])  # LIDAR wiring inverted
    naive_broken = fuse_proxies(dataset, broken, fuser=MeanFuser())
    stacked_broken = fuse_proxies(
        dataset, broken,
        fuser=LogisticFuser(), oracle=oracle,
        pilot_size=1_000, rng=np.random.default_rng(8),
    )
    print("\nWith the LIDAR scores inverted (adversarial modality):")
    print(f"  mean fusion        {mean_precision(naive_broken, query):.3f}")
    print(f"  logistic stacking  {mean_precision(stacked_broken, query):.3f}"
          "   <- learns a negative weight and recovers")


if __name__ == "__main__":
    main()
