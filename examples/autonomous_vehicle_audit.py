"""Autonomous-vehicle label auditing under model drift (Sections 2.2, 6.2).

An AV company audits its labeled data for missed pedestrians.  This is
mission-critical, so the query is recall-target.  The fleet collects
new data every day, and the proxy's score distribution drifts (weather,
lighting, traffic) — the setting of the paper's Table 4.

This example fits a threshold the way deployed systems do (frozen, on
day-1 data) and shows it silently violating the recall target on day-2
data, while SUPG — which re-estimates the threshold from a fresh label
budget on the new data — still meets it.

Run:  python examples/autonomous_vehicle_audit.py
"""

import numpy as np

import repro
from repro.datasets import make_night_street_drift_pair


def main() -> None:
    day1, day2 = make_night_street_drift_pair(seed=3)
    print(f"Day 1 (training): {day1.describe()}")
    print(f"Day 2 (shifted) : {day2.describe()}")

    gamma, delta, budget = 0.95, 0.05, 2_000
    query = repro.ApproxQuery.recall_target(gamma, delta, budget)

    # --- Frozen threshold: fit on day 1 with FULL labels, apply to day 2 ----
    frozen = repro.FixedThresholdSelector(query).fit(day1)
    frozen_result = frozen.select(day2)
    frozen_quality = repro.evaluate_selection(frozen_result.indices, day2.labels)
    print(f"\nFrozen day-1 threshold tau={frozen.tau_:.4f} applied to day 2:")
    print(f"  recall = {frozen_quality.recall:.3f}  (target {gamma})  "
          f"{'VIOLATED' if frozen_quality.recall < gamma else 'ok'}")

    # --- SUPG on the shifted data: fresh labels, fresh threshold ------------
    recalls = []
    precisions = []
    trials = 20
    for t in range(trials):
        result = repro.ImportanceCIRecall(query).select(day2, seed=100 + t)
        quality = repro.evaluate_selection(result.indices, day2.labels)
        recalls.append(quality.recall)
        precisions.append(quality.precision)
    success = float(np.mean([r >= gamma for r in recalls]))
    print(f"\nSUPG (IS-CI-R) on day 2, {trials} runs with {budget} labels each:")
    print(f"  min recall   = {min(recalls):.3f}")
    print(f"  success rate = {success:.2f}  (guaranteed >= {1 - delta})")
    print(f"  mean precision of returned sets = {np.mean(precisions):.3f}")

    # The flagged frames would now go to a human re-labeling queue:
    result = repro.ImportanceCIRecall(query).select(day2, seed=999)
    print(f"\nAudit queue: {result.size} of {day2.size} frames flagged for "
          f"re-labeling ({result.size / day2.size:.1%} of the fleet's day).")

    # Before committing labeler hours, certify the queue's quality with
    # a post-hoc audit (extra labels buy simultaneous precision/recall
    # bounds for this specific set):
    from repro.core import audit_result
    from repro.oracle import oracle_from_labels

    audit_oracle = oracle_from_labels(day2.labels, budget=2_000)
    report = audit_result(day2, result.indices, audit_oracle, delta=0.05,
                          budget=2_000, seed=7)
    print(f"Certified ({report.labels_used} audit labels): {report.summary()}")


if __name__ == "__main__":
    main()
