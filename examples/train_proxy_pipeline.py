"""End-to-end deployment pipeline: distill a proxy, plan, calibrate, select.

The paper assumes proxy scores already exist (Section 4.1 notes that
systems ship "scripts for automatically constructing smaller proxy
models from an existing oracle").  This example runs that whole loop
under ONE oracle budget:

1. generate a video-like feature task (bursty rare events);
2. spend part of the budget distilling a small proxy model from oracle
   labels (stratified so rare positives appear in the training set);
3. recalibrate the proxy's scores on the already-paid training labels;
4. ask the budget planner whether the remaining labels are enough;
5. run SUPG's IS-CI-R with the rest and report the outcome — including
   the simulated labeling-service invoice.

Run:  python examples/train_proxy_pipeline.py
"""

import numpy as np

import repro
from repro.calibrate import IsotonicCalibrator
from repro.core import plan_budget
from repro.oracle import BudgetedOracle, SimulatedLabelingService
from repro.proxy import make_temporal_task, train_proxy


def main() -> None:
    rng = np.random.default_rng(0)
    task = make_temporal_task(
        size=60_000, event_rate=0.0008, mean_event_length=40, separation=3.0, seed=1
    )
    print(f"Task: {task.size} frames, {task.positive_rate:.2%} positive (bursty events)")

    # One budget, one (simulated) labeling service behind it.
    total_budget = 4_000
    service = SimulatedLabelingService(labels=task.labels, batch_size=200)
    oracle = BudgetedOracle(service.label_fn, budget=total_budget)

    # --- 1-2. Distill the proxy ---------------------------------------------
    trained = train_proxy(task, oracle, train_budget=1_200, rng=rng)
    print(f"\nProxy trained on {trained.training_labels_used} oracle labels")

    # --- 3. Recalibrate on the labels we already own ------------------------
    labeled = oracle.labeled_indices()
    pilot_labels = oracle.query(labeled)  # cached: costs nothing
    calibrator = IsotonicCalibrator().fit(
        trained.dataset.proxy_scores[labeled], pilot_labels
    )
    workload = trained.dataset.with_scores(
        calibrator.transform(trained.dataset.proxy_scores), name="calibrated-proxy"
    )
    report = repro.calibration_report(
        workload.proxy_scores[labeled], pilot_labels
    )
    print(f"Calibration after isotonic fit: ECE={report.expected_calibration_error:.3f}, "
          f"monotone={report.is_approximately_monotone()}")

    # --- 4. Plan the selection budget ----------------------------------------
    query = repro.ApproxQuery.recall_target(gamma=0.9, delta=0.05, budget=oracle.remaining())
    plan = plan_budget(query, workload.proxy_scores)
    print(f"\nPlanner: need >= {plan.minimum_budget} labels "
          f"(recommended {plan.recommended_budget}); we have {oracle.remaining()}")
    print(f"  {plan.rationale}")

    # --- 5. Select with guarantees -------------------------------------------
    result = repro.ImportanceCIRecall(query).select(workload, seed=2, oracle=oracle)
    quality = repro.evaluate_selection(result.indices, task.labels)
    print(f"\nSelection: {result.size} frames returned, "
          f"recall={quality.recall:.3f} (target 0.90), precision={quality.precision:.3f}")
    print(f"Oracle labels used in total: {oracle.calls_used} / {total_budget}")
    print(f"Labeling-service invoice: {service.invoice()}")


if __name__ == "__main__":
    main()
