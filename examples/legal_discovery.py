"""Legal discovery over text corpora (Section 2.3 of the paper).

A firm reviews a corpus for documents matching a sensitive relation.
Two distinct legal postures map to the two query types:

- *responsive-document production* needs high recall (a missed document
  is sanctionable): RT query on the TACRED-like corpus;
- *privilege review* needs high precision (wrongly produced privileged
  material is the disaster): PT query on the OntoNotes-like corpus.

It also demonstrates a joint-target (JT) query (Appendix A), which has
no label budget but reports how many contract-lawyer hours (oracle
calls) it consumed — the quantity Figure 15 studies — plus the dollar
cost from the paper's cost model.

Run:  python examples/legal_discovery.py
"""

import repro
from repro.oracle import DATASET_COST_MODELS


def main() -> None:
    tacred = repro.datasets.make_tacred(seed=11)
    ontonotes = repro.datasets.make_ontonotes(seed=12)
    print(f"Production corpus : {tacred.describe()}")
    print(f"Privilege corpus  : {ontonotes.describe()}")

    # --- RT: responsive-document production ---------------------------------
    rt_query = repro.ApproxQuery.recall_target(gamma=0.95, delta=0.05, budget=2_000)
    rt_result = repro.ImportanceCIRecall(rt_query).select(tacred, seed=1)
    rt_quality = repro.evaluate_selection(rt_result.indices, tacred.labels)
    print(f"\nProduction (recall >= 95%): returned {rt_result.size} docs, "
          f"recall={rt_quality.recall:.3f}, precision={rt_quality.precision:.3f}")

    # --- PT: privilege review -------------------------------------------------
    pt_query = repro.ApproxQuery.precision_target(gamma=0.95, delta=0.05, budget=2_000)
    pt_result = repro.ImportanceCIPrecisionTwoStage(pt_query).select(ontonotes, seed=2)
    pt_quality = repro.evaluate_selection(pt_result.indices, ontonotes.labels)
    print(f"Privilege (precision >= 95%): returned {pt_result.size} docs, "
          f"precision={pt_quality.precision:.3f}, recall={pt_quality.recall:.3f}")

    # --- JT: both targets, unbounded labeling, usage reported ---------------
    joint = repro.JointQuery(
        recall_gamma=0.9, precision_gamma=0.9, delta=0.05, stage_budget=1_500
    )
    jt_result = repro.JointSelector(joint, method="is").select(tacred, seed=3)
    jt_quality = repro.evaluate_selection(jt_result.indices, tacred.labels)
    print(f"\nJoint (recall & precision >= 90%): returned {jt_result.size} docs, "
          f"recall={jt_quality.recall:.3f}, precision={jt_quality.precision:.3f}")
    print(f"  total lawyer reviews used: {jt_result.oracle_calls}")

    # --- What did this cost? ---------------------------------------------------
    model = DATASET_COST_MODELS["tacred"]
    supg_cost = model.supg_query(num_records=tacred.size, oracle_budget=rt_query.budget)
    exhaustive = model.exhaustive_cost(tacred.size)
    print(f"\nCost (production corpus): SUPG ${supg_cost.total:,.2f} vs "
          f"exhaustive review ${exhaustive:,.2f} "
          f"({exhaustive / supg_cost.total:.0f}x saved)")


if __name__ == "__main__":
    main()
